package linial

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func properIntColoring(t *testing.T, g *graph.Graph, colors []int, k int) {
	t.Helper()
	c := coloring.NewPartial(g.N())
	copy(c.Colors, colors)
	if err := coloring.VerifyComplete(g, c, k); err != nil {
		t.Fatalf("coloring invalid: %v", err)
	}
}

func TestColorCycle(t *testing.T) {
	g := graph.Cycle(101)
	colors, rounds, err := ColorGraph(g, 3)
	if err != nil {
		t.Fatalf("ColorGraph: %v", err)
	}
	properIntColoring(t, g, colors, 3)
	if rounds > 40 {
		t.Fatalf("cycle coloring took %d rounds, expected O(log* n) + O(Δ log)", rounds)
	}
}

func TestColorVariousGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"Path", graph.Path(64)},
		{"Torus", graph.Torus(9, 11)},
		{"Complete", graph.Complete(17)},
		{"Star", graph.Star(30)},
		{"RandomRegular", graph.RandomRegular(60, 6, rng)},
		{"Tree", graph.RandomTree(200, rng)},
		{"ER", graph.ErdosRenyi(80, 0.1, rng)},
		{"Singleton", graph.Path(1)},
		{"EdgeOnly", graph.Path(2)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			k := c.g.MaxDegree() + 1
			colors, _, err := ColorGraph(c.g, k)
			if err != nil {
				t.Fatalf("ColorGraph: %v", err)
			}
			properIntColoring(t, c.g, colors, k)
		})
	}
}

func TestColorWithPermutedIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.PermuteIDs(graph.Torus(8, 8), rng)
	colors, _, err := ColorGraph(g, 5)
	if err != nil {
		t.Fatalf("ColorGraph: %v", err)
	}
	properIntColoring(t, g, colors, 5)
}

func TestColorRejectsTooFewColors(t *testing.T) {
	g := graph.Complete(4)
	if _, _, err := ColorGraph(g, 3); err == nil {
		t.Fatal("accepted target < Δ+1")
	}
}

func TestColorTargetAboveDeltaPlusOne(t *testing.T) {
	g := graph.Cycle(33)
	colors, _, err := ColorGraph(g, 10)
	if err != nil {
		t.Fatalf("ColorGraph: %v", err)
	}
	properIntColoring(t, g, colors, 10)
}

// Round scaling: coloring a path should cost far fewer rounds than its
// length (log* behaviour, not linear).
func TestColorRoundsSublinear(t *testing.T) {
	for _, n := range []int{1 << 8, 1 << 12, 1 << 16} {
		g := graph.Cycle(n)
		_, rounds, err := ColorGraph(g, 3)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rounds > 60 {
			t.Fatalf("n=%d took %d rounds; expected log*-scale", n, rounds)
		}
	}
}

func TestReduce(t *testing.T) {
	g := graph.Complete(6)
	net := local.New(g)
	// A proper coloring with widely spread colors.
	cur := []int{0, 17, 34, 51, 68, 85}
	out, err := Reduce(net, cur, 100, 6)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	properIntColoring(t, g, out, 6)
	if net.Rounds() == 0 {
		t.Fatal("reduction charged no rounds")
	}
}

func TestReduceRejectsBadInput(t *testing.T) {
	g := graph.Complete(4)
	net := local.New(g)
	if _, err := Reduce(net, []int{0, 1, 2, 3}, 4, 3); err == nil {
		t.Fatal("accepted target < Δ+1")
	}
	if _, err := Reduce(net, []int{0, 1, 2, 9}, 4, 4); err == nil {
		t.Fatal("accepted color >= m")
	}
}

func TestPlanStepsReachFixedPoint(t *testing.T) {
	steps := planSteps(64, 63)
	if len(steps) == 0 {
		t.Fatal("no reduction steps planned for 64-bit IDs")
	}
	// Bit-length must strictly decrease along the schedule.
	prev := 64.0
	for _, s := range steps {
		if s.q <= s.d*63 {
			t.Fatalf("step %+v: q not above dΔ", s)
		}
		if !isPrime(s.q) {
			t.Fatalf("step %+v: q not prime", s)
		}
		bits := 2 * log2(float64(s.q))
		if bits >= prev {
			t.Fatalf("step %+v does not shrink the color space (%f -> %f bits)", s, prev, bits)
		}
		prev = bits
	}
}

func log2(x float64) float64 {
	// small helper to avoid importing math in tests twice
	l := 0.0
	for x >= 2 {
		x /= 2
		l++
	}
	return l + x - 1 // adequate monotone approximation for the test
}

func TestPrimes(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 11, 127, 65537}
	for _, p := range primes {
		if !isPrime(p) {
			t.Fatalf("%d should be prime", p)
		}
	}
	composites := []uint64{0, 1, 4, 9, 100, 65536}
	for _, c := range composites {
		if isPrime(c) {
			t.Fatalf("%d should not be prime", c)
		}
	}
	if nextPrime(0) != 2 || nextPrime(8) != 11 || nextPrime(11) != 11 {
		t.Fatal("nextPrime wrong")
	}
}

func TestPolyEval(t *testing.T) {
	// p(x) = 3 + 2x + x^2 over F_5
	coeffs := []uint64{3, 2, 1}
	want := []uint64{3, 1, 1, 3, 2} // p(0..4) mod 5
	for x, w := range want {
		if got := evalPoly(coeffs, uint64(x), 5); got != w {
			t.Fatalf("p(%d) = %d, want %d", x, got, w)
		}
	}
	d := digitsBaseQ(3+2*5+1*25, 5, 2)
	for i, c := range coeffs {
		if d[i] != c {
			t.Fatalf("digits = %v, want %v", d, coeffs)
		}
	}
}

// Property: Color yields a proper Δ+1 coloring on random graphs with random
// ID permutations.
func TestColorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		g := graph.PermuteIDs(graph.ErdosRenyi(n, 0.15, rng), rng)
		k := g.MaxDegree() + 1
		colors, _, err := ColorGraph(g, k)
		if err != nil {
			return false
		}
		c := coloring.NewPartial(n)
		copy(c.Colors, colors)
		return coloring.VerifyComplete(g, c, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
