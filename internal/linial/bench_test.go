package linial

import (
	"testing"

	"deltacoloring/internal/graph"
)

func BenchmarkColorCycle(b *testing.B) {
	g := graph.Cycle(1 << 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ColorGraph(g, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColorDense(b *testing.B) {
	g, _ := graph.HardCliqueBipartite(16, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ColorGraph(g, g.MaxDegree()+1); err != nil {
			b.Fatal(err)
		}
	}
}
