package acd

import (
	"math/rand"
	"testing"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// requireGroundTruth checks that the computed ACD matches a generator's
// ground-truth clique partition exactly.
func requireGroundTruth(t *testing.T, g *graph.Graph, part *graph.CliquePartition, a *ACD) {
	t.Helper()
	if !a.IsDense() {
		t.Fatalf("expected dense classification, got %d sparse vertices", a.SparseCount())
	}
	if len(a.Cliques) != len(part.Cliques) {
		t.Fatalf("ACD found %d cliques, ground truth has %d", len(a.Cliques), len(part.Cliques))
	}
	for v := 0; v < g.N(); v++ {
		for w := v + 1; w < g.N(); w++ {
			same := part.Member[v] == part.Member[w]
			if (a.CliqueOf[v] == a.CliqueOf[w]) != same {
				t.Fatalf("vertices %d, %d: ACD grouping disagrees with ground truth", v, w)
			}
		}
	}
}

func TestComputeOnHardCliqueBipartite(t *testing.T) {
	g, part := graph.HardCliqueBipartite(16, 16)
	net := local.New(g)
	a, err := Compute(net, 1.0/8)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if err := a.Verify(g); err != nil {
		t.Fatal(err)
	}
	requireGroundTruth(t, g, part, a)
	if net.Rounds() == 0 || net.Rounds() > 30 {
		t.Fatalf("ACD charged %d rounds, want O(1)", net.Rounds())
	}
}

func TestComputeOnEasyCliqueRing(t *testing.T) {
	g, part := graph.EasyCliqueRing(6, 16)
	a, err := Compute(local.New(g), 1.0/8)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if err := a.Verify(g); err != nil {
		t.Fatal(err)
	}
	requireGroundTruth(t, g, part, a)
}

func TestComputePaperEpsDelta63(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	g, part := graph.HardCliqueBipartite(63, 63)
	a, err := Compute(local.New(g), PaperEps)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if err := a.Verify(g); err != nil {
		t.Fatal(err)
	}
	requireGroundTruth(t, g, part, a)
}

func TestTreeIsAllSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomTree(100, rng)
	a, err := Compute(local.New(g), 1.0/8)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if a.SparseCount() != 100 {
		t.Fatalf("tree: %d sparse vertices, want all 100", a.SparseCount())
	}
	if a.IsDense() {
		t.Fatal("tree misclassified as dense")
	}
	if err := a.Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestCycleIsAllSparse(t *testing.T) {
	g := graph.Cycle(50)
	a, err := Compute(local.New(g), 1.0/8)
	if err != nil {
		t.Fatal(err)
	}
	if a.SparseCount() != 50 {
		t.Fatalf("cycle: %d sparse, want 50", a.SparseCount())
	}
}

func TestIsolatedCliquesAreACs(t *testing.T) {
	// K_{Δ+1} components: valid ACs of size Δ+1 (these are the Brooks
	// exceptions; Theorem 1 excludes them separately).
	g := graph.DisjointCliques(3, 17)
	a, err := Compute(local.New(g), 1.0/8)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(g); err != nil {
		t.Fatal(err)
	}
	if !a.IsDense() || len(a.Cliques) != 3 {
		t.Fatalf("disjoint cliques: dense=%v cliques=%d", a.IsDense(), len(a.Cliques))
	}
}

func TestErdosRenyiMostlySparse(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := graph.ErdosRenyi(120, 0.1, rng)
	a, err := Compute(local.New(g), 1.0/8)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(g); err != nil {
		t.Fatal(err)
	}
	if a.IsDense() {
		t.Fatal("sparse random graph misclassified as dense")
	}
}

func TestComputeRejectsBadEps(t *testing.T) {
	g := graph.Cycle(5)
	if _, err := Compute(local.New(g), 0); err == nil {
		t.Fatal("accepted eps=0")
	}
	if _, err := Compute(local.New(g), 1); err == nil {
		t.Fatal("accepted eps=1")
	}
}

func TestComputeEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	a, err := Compute(local.New(g), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsDense() || len(a.Cliques) != 0 {
		t.Fatal("empty graph should be trivially dense with no cliques")
	}
}

func TestExternalNeighbors(t *testing.T) {
	g, part := graph.HardCliqueBipartite(16, 16)
	a, err := Compute(local.New(g), 1.0/8)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		ext := a.ExternalNeighbors(g, v)
		if len(ext) != 1 {
			t.Fatalf("vertex %d: %d external neighbors, want 1", v, len(ext))
		}
		if part.Member[ext[0]] == part.Member[v] {
			t.Fatalf("vertex %d: external neighbor in same clique", v)
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	g, _ := graph.HardCliqueBipartite(16, 16)
	a, err := Compute(local.New(g), 1.0/8)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: move one vertex to another clique.
	bad := *a
	bad.CliqueOf = append([]int(nil), a.CliqueOf...)
	bad.CliqueOf[0] = (a.CliqueOf[0] + 1) % len(a.Cliques)
	if err := bad.Verify(g); err == nil {
		t.Fatal("corrupted ACD passed Verify")
	}
}

func TestPermutedIDsSameDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g, part := graph.HardCliqueBipartite(16, 16)
	p := graph.PermuteIDs(g, rng)
	a, err := Compute(local.New(p), 1.0/8)
	if err != nil {
		t.Fatal(err)
	}
	requireGroundTruth(t, p, part, a)
}
