// Package acd implements the almost-clique decomposition (ACD) of Lemma 2:
// a partition of the vertices into V_sparse and almost cliques C_1..C_t with
//
//	(i)   (1-ε/4)Δ <= |C_i| <= (1+ε)Δ,
//	(ii)  every v in C_i has at least (1-ε)Δ neighbors inside C_i,
//	(iii) every u outside C_i has at most (1-ε/2)Δ neighbors inside C_i.
//
// The computation follows the classic recipe [HSS18, ACK19] with the
// deterministic postprocessing of [FHM23, HM24]: vertices exchange neighbor
// lists (1 round), adjacent vertices with at least (1-η)Δ common neighbors
// become friends (internal η = 1/6), vertices with at least (1-η)Δ friends
// are dense, connected components of the friend graph restricted to dense
// vertices form candidate almost cliques (their diameter is constant, so
// component identification is O(1) rounds), and a constant number of
// repair rounds enforce (i)-(iii), demoting irreparable vertices to
// V_sparse. Everything is O(1) rounds, matching Lemma 2.
//
// Definition 4: a graph is *dense* when the ACD at ε = 1/63 leaves V_sparse
// empty. PaperEps exports that constant.
package acd

import (
	"fmt"
	"math"
	"sort"

	"deltacoloring/internal/arena"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// PaperEps is the ε the paper fixes for Definition 4 and Theorem 1.
const PaperEps = 1.0 / 63.0

// internalEta is the friendship/denseness threshold of the basic
// decomposition [HSS18]; the Lemma 2 guarantees come from postprocessing
// with ε, not from η.
const internalEta = 1.0 / 6.0

// Sparse marks a vertex outside every almost clique.
const Sparse = -1

// ACD is an almost-clique decomposition.
type ACD struct {
	// Eps is the ε the decomposition was computed with.
	Eps float64
	// Delta is the maximum degree of the graph.
	Delta int
	// CliqueOf maps each vertex to its clique index, or Sparse.
	CliqueOf []int
	// Cliques lists the vertex sets of the almost cliques, each sorted.
	Cliques [][]int
}

// Compute runs the O(1)-round ACD computation on net's graph.
func Compute(net *local.Network, eps float64) (*ACD, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("acd: eps must be in (0,1), got %v", eps)
	}
	g := net.Graph()
	n := g.N()
	delta := g.MaxDegree()
	a := &ACD{Eps: eps, Delta: delta, CliqueOf: make([]int, n)}
	if n == 0 {
		return a, nil
	}
	ar := arena.Get()
	defer arena.Put(ar)

	// Round 1-2: neighbors exchange adjacency lists; afterwards every vertex
	// knows its 2-ball and can evaluate friendship and denseness locally.
	// Friendship (>= friendThreshold common neighbors) is evaluated with a
	// stamped-neighborhood count: mark N(v) once, then for each heavier
	// endpoint w count marks along N(w) — a linear scan of loads and adds in
	// place of the per-edge sorted-merge (graph.CommonNeighbors) that
	// dominated the dense-phase CPU profile.
	net.Charge(2)
	friendThreshold := int(math.Ceil((1 - internalEta) * float64(delta)))
	var fpairs []int32
	mark := ar.Bools(n)
	for v := 0; v < n; v++ {
		nv := g.Neighbors(v)
		for _, w := range nv {
			mark[w] = true
		}
		for _, nw := range nv {
			w := int(nw)
			if w <= v {
				continue
			}
			cnt := 0
			for _, x := range g.Neighbors(w) {
				if mark[x] {
					cnt++
				}
			}
			if cnt >= friendThreshold {
				fpairs = append(fpairs, int32(v), int32(w))
			}
		}
		for _, w := range nv {
			mark[w] = false
		}
	}
	// Counting-sort the friendship pairs into a CSR adjacency (mirrors the
	// graph builder): fadj[foff[v]:foff[v+1]] lists v's friends.
	foff := ar.Int32s(n + 1)
	for _, v := range fpairs {
		foff[v+1]++
	}
	for v := 0; v < n; v++ {
		foff[v+1] += foff[v]
	}
	fadj := ar.Int32s(len(fpairs))
	fcur := ar.Int32s(n)
	copy(fcur, foff[:n])
	for i := 0; i < len(fpairs); i += 2 {
		u, w := fpairs[i], fpairs[i+1]
		fadj[fcur[u]] = w
		fcur[u]++
		fadj[fcur[w]] = u
		fcur[w]++
	}
	dense := ar.Bools(n)
	for v := 0; v < n; v++ {
		dense[v] = int(foff[v+1]-foff[v]) >= friendThreshold
	}

	// Components of the friend graph among dense vertices. The theory
	// guarantees constant diameter, so this is O(1) rounds; we charge a
	// fixed 6 and demote any component whose friend-diameter exceeds 4
	// (impossible for genuine almost cliques, defensive otherwise).
	net.Charge(6)
	comp := ar.IntsFill(n, Sparse)
	var comps [][]int
	for s := 0; s < n; s++ {
		if !dense[s] || comp[s] != Sparse {
			continue
		}
		id := len(comps)
		queue := []int{s}
		comp[s] = id
		for q := 0; q < len(queue); q++ {
			v := queue[q]
			for _, w := range fadj[foff[v]:foff[v+1]] {
				if dense[w] && comp[w] == Sparse {
					comp[w] = id
					queue = append(queue, int(w))
				}
			}
		}
		sort.Ints(queue)
		comps = append(comps, queue)
	}
	dist := ar.Int32sFill(n, -1)
	for i, members := range comps {
		if friendDiameterExceeds(foff, fadj, comp, i, members, dist, 4) {
			for _, v := range members {
				comp[v] = Sparse
			}
			comps[i] = nil
		}
	}

	// Repair loop: enforce (ii) by demotion, then (iii) by absorption.
	// Each iteration is O(1) rounds.
	minInside := int(math.Ceil((1 - eps) * float64(delta)))
	absorbAbove := (1 - eps/2) * float64(delta)
	demote := ar.Bools(n)
	for iter := 0; iter < 3; iter++ {
		net.Charge(2)
		changed := false
		// (ii): demote members with too few internal neighbors (snapshot
		// semantics: all demotions of one iteration use the same view).
		clear(demote)
		for v := 0; v < n; v++ {
			if comp[v] == Sparse {
				continue
			}
			if insideCount(g, comp, v, comp[v]) < minInside {
				demote[v] = true
				changed = true
			}
		}
		for v, d := range demote {
			if d {
				comp[v] = Sparse
			}
		}
		// (iii): absorb outsiders with too many neighbors in one clique.
		// The threshold exceeds Δ/2, so the target clique is unique.
		for v := 0; v < n; v++ {
			if comp[v] != Sparse {
				continue
			}
			if c := majorityClique(g, comp, v, Sparse, absorbAbove); c != Sparse {
				comp[v] = c
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// (i): dissolve components with out-of-range sizes.
	net.Charge(1)
	sizes := ar.Ints(len(comps))
	for _, c := range comp {
		if c != Sparse {
			sizes[c]++
		}
	}
	minSize := int(math.Ceil((1 - eps/4) * float64(delta)))
	maxSize := int(math.Floor((1 + eps) * float64(delta)))
	for v := 0; v < n; v++ {
		if c := comp[v]; c != Sparse && (sizes[c] < minSize || sizes[c] > maxSize) {
			comp[v] = Sparse
		}
	}

	// Final defensive sweep: dissolve any clique still violating (iii).
	for iter := 0; iter < 3; iter++ {
		bad := violatingClique(g, comp, absorbAbove)
		if bad == Sparse {
			break
		}
		for v := 0; v < n; v++ {
			if comp[v] == bad {
				comp[v] = Sparse
			}
		}
	}

	// Renumber cliques densely and build the final structure.
	remap := ar.IntsFill(len(comps), Sparse)
	for v := 0; v < n; v++ {
		c := comp[v]
		if c == Sparse {
			a.CliqueOf[v] = Sparse
			continue
		}
		id := remap[c]
		if id == Sparse {
			id = len(a.Cliques)
			remap[c] = id
			a.Cliques = append(a.Cliques, nil)
		}
		a.CliqueOf[v] = id
		a.Cliques[id] = append(a.Cliques[id], v)
	}
	return a, nil
}

// friendDiameterExceeds reports whether the diameter of the friend graph
// (foff/fadj CSR) restricted to component id exceeds bound, or the component
// is disconnected in it. dist is an n-sized scratch array that must be all -1
// on entry; it is restored to -1 before returning.
//
// One eccentricity BFS from an arbitrary member usually decides the question:
// ecc(s) <= diameter <= 2*ecc(s), so ecc > bound proves excess and
// 2*ecc <= bound proves the opposite (genuine almost cliques have friend
// diameter 1-2, hitting this path). Only the ambiguous band falls back to the
// all-sources sweep the fast path replaced.
func friendDiameterExceeds(foff, fadj []int32, comp []int, id int, members []int, dist []int32, bound int) bool {
	queue := make([]int32, 0, len(members))
	bfs := func(s int) (ecc, visited int) {
		queue = append(queue[:0], int32(s))
		dist[s] = 0
		for q := 0; q < len(queue); q++ {
			v := queue[q]
			d := dist[v] + 1
			for _, w := range fadj[foff[v]:foff[v+1]] {
				if comp[w] == id && dist[w] < 0 {
					dist[w] = d
					if int(d) > ecc {
						ecc = int(d)
					}
					queue = append(queue, w)
				}
			}
		}
		visited = len(queue)
		for _, v := range queue {
			dist[v] = -1
		}
		return ecc, visited
	}
	ecc, visited := bfs(members[0])
	if visited != len(members) {
		return true // disconnected in the friend graph: treat as huge
	}
	if ecc > bound {
		return true
	}
	if 2*ecc <= bound {
		return false
	}
	worst := ecc
	for _, s := range members[1:] {
		ecc, _ := bfs(s)
		if ecc > worst {
			worst = ecc
		}
	}
	return worst > bound
}

// majorityClique returns the clique label (other than skip) that strictly
// more than `above` of v's neighbors carry, or Sparse if none does. Because
// above > Δ/2 and v has at most Δ neighbors, such a label is a strict
// majority among the qualifying neighbors, so a Boyer-Moore vote identifies
// the unique candidate and a second pass verifies the count — no map needed.
func majorityClique(g *graph.Graph, comp []int, v, skip int, above float64) int {
	cand, votes := Sparse, 0
	nbrs := g.Neighbors(v)
	for _, w := range nbrs {
		c := comp[w]
		if c == Sparse || c == skip {
			continue
		}
		switch {
		case votes == 0:
			cand, votes = c, 1
		case c == cand:
			votes++
		default:
			votes--
		}
	}
	if cand == Sparse {
		return Sparse
	}
	cnt := 0
	for _, w := range nbrs {
		if comp[w] == cand {
			cnt++
		}
	}
	if float64(cnt) > above {
		return cand
	}
	return Sparse
}

func insideCount(g *graph.Graph, comp []int, v, c int) int {
	n := 0
	for _, w := range g.Neighbors(v) {
		if comp[w] == c {
			n++
		}
	}
	return n
}

func violatingClique(g *graph.Graph, comp []int, absorbAbove float64) int {
	for v := 0; v < g.N(); v++ {
		if c := majorityClique(g, comp, v, comp[v], absorbAbove); c != Sparse {
			return c
		}
	}
	return Sparse
}

// IsDense reports whether the decomposition has no sparse vertices
// (Definition 4).
func (a *ACD) IsDense() bool {
	for _, c := range a.CliqueOf {
		if c == Sparse {
			return false
		}
	}
	return true
}

// SparseCount returns the number of sparse vertices.
func (a *ACD) SparseCount() int {
	n := 0
	for _, c := range a.CliqueOf {
		if c == Sparse {
			n++
		}
	}
	return n
}

// Verify checks conditions (i)-(iii) of Lemma 2 plus internal consistency.
func (a *ACD) Verify(g *graph.Graph) error {
	if len(a.CliqueOf) != g.N() {
		return fmt.Errorf("acd: CliqueOf covers %d vertices, graph has %d", len(a.CliqueOf), g.N())
	}
	delta := g.MaxDegree()
	minSize := (1 - a.Eps/4) * float64(delta)
	maxSize := (1 + a.Eps) * float64(delta)
	minInside := (1 - a.Eps) * float64(delta)
	maxOutside := (1 - a.Eps/2) * float64(delta)
	seen := 0
	for ci, members := range a.Cliques {
		if s := float64(len(members)); s < minSize || s > maxSize {
			return fmt.Errorf("acd: clique %d has size %d outside [%.2f, %.2f]", ci, len(members), minSize, maxSize)
		}
		for _, v := range members {
			if a.CliqueOf[v] != ci {
				return fmt.Errorf("acd: vertex %d: listed in clique %d but CliqueOf=%d", v, ci, a.CliqueOf[v])
			}
			seen++
			if float64(insideCount(g, a.CliqueOf, v, ci)) < minInside {
				return fmt.Errorf("acd: vertex %d: too few neighbors inside clique %d", v, ci)
			}
		}
	}
	for v, c := range a.CliqueOf {
		if c == Sparse {
			continue
		}
		if c < 0 || c >= len(a.Cliques) {
			return fmt.Errorf("acd: vertex %d: invalid clique %d", v, c)
		}
	}
	for v := 0; v < g.N(); v++ {
		if c := majorityClique(g, a.CliqueOf, v, a.CliqueOf[v], maxOutside); c != Sparse {
			cnt := insideCount(g, a.CliqueOf, v, c)
			return fmt.Errorf("acd: vertex %d: outsider with %d neighbors in clique %d (max %.2f)", v, cnt, c, maxOutside)
		}
	}
	total := 0
	for _, members := range a.Cliques {
		total += len(members)
	}
	if total != seen {
		return fmt.Errorf("acd: inconsistent clique listings")
	}
	return nil
}

// ExternalNeighbors returns v's neighbors outside its own clique (or all
// neighbors if v is sparse).
func (a *ACD) ExternalNeighbors(g *graph.Graph, v int) []int {
	var out []int
	for _, w := range g.Neighbors(v) {
		if a.CliqueOf[w] != a.CliqueOf[v] || a.CliqueOf[v] == Sparse {
			out = append(out, int(w))
		}
	}
	return out
}
