package acd

import (
	"testing"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func BenchmarkCompute(b *testing.B) {
	g, _ := graph.HardCliqueBipartite(32, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(local.New(g), 1.0/16); err != nil {
			b.Fatal(err)
		}
	}
}
