// Package coloring provides vertex-coloring primitives shared by every
// algorithm in the repository: partial colorings, palettes (sets of
// available colors), and verifiers for properness, completeness, and
// list-compliance.
//
// Colors are 0-based integers; the Δ-coloring problem uses the color space
// [0, Δ). The sentinel None (-1) marks an uncolored vertex.
package coloring

import (
	"fmt"
	"math/bits"

	"deltacoloring/internal/graph"
)

// None marks an uncolored vertex.
const None = -1

// Partial is a partial vertex coloring: Colors[v] is the color of v or None.
type Partial struct {
	Colors []int
}

// NewPartial returns an all-uncolored partial coloring on n vertices.
func NewPartial(n int) *Partial {
	c := &Partial{Colors: make([]int, n)}
	for v := range c.Colors {
		c.Colors[v] = None
	}
	return c
}

// Colored reports whether v has a color.
func (c *Partial) Colored(v int) bool { return c.Colors[v] != None }

// CountColored returns the number of colored vertices.
func (c *Partial) CountColored() int {
	n := 0
	for _, col := range c.Colors {
		if col != None {
			n++
		}
	}
	return n
}

// Clone returns a deep copy.
func (c *Partial) Clone() *Partial {
	out := &Partial{Colors: make([]int, len(c.Colors))}
	copy(out.Colors, c.Colors)
	return out
}

// VerifyProper checks that no edge of g is monochromatic (uncolored
// endpoints are fine) and every used color lies in [0, numColors).
func VerifyProper(g *graph.Graph, c *Partial, numColors int) error {
	if len(c.Colors) != g.N() {
		return fmt.Errorf("coloring: %d colors for %d vertices", len(c.Colors), g.N())
	}
	for v, col := range c.Colors {
		if col == None {
			continue
		}
		if col < 0 || col >= numColors {
			return fmt.Errorf("coloring: vertex %d: color %d outside [0,%d)", v, col, numColors)
		}
		for _, w := range g.Neighbors(v) {
			if c.Colors[w] == col {
				return fmt.Errorf("coloring: edge (%d,%d): monochromatic color %d", v, w, col)
			}
		}
	}
	return nil
}

// VerifyComplete checks properness and that every vertex is colored.
func VerifyComplete(g *graph.Graph, c *Partial, numColors int) error {
	if err := VerifyProper(g, c, numColors); err != nil {
		return err
	}
	for v, col := range c.Colors {
		if col == None {
			return fmt.Errorf("coloring: vertex %d: uncolored", v)
		}
	}
	return nil
}

// VerifyLists checks properness plus that each colored vertex used a color
// from its list.
func VerifyLists(g *graph.Graph, c *Partial, lists []Palette) error {
	if len(lists) != g.N() {
		return fmt.Errorf("coloring: %d lists for %d vertices", len(lists), g.N())
	}
	maxColor := 0
	for _, l := range lists {
		if m := l.Max(); m >= maxColor {
			maxColor = m + 1
		}
	}
	if err := VerifyProper(g, c, maxColor); err != nil {
		return err
	}
	for v, col := range c.Colors {
		if col != None && !lists[v].Has(col) {
			return fmt.Errorf("coloring: vertex %d: color %d not in its list", v, col)
		}
	}
	return nil
}

// Palette is a set of colors represented as a bitset. The zero value is the
// empty palette.
type Palette struct {
	words []uint64
}

// WordsFor returns the number of 64-bit words a palette over [0, k) needs.
// Slab allocators use it to size backing stores for ListSlab.
func WordsFor(k int) int { return (k + 63) / 64 }

// FullPalette returns the palette {0, ..., k-1}.
func FullPalette(k int) Palette {
	var p Palette
	p.Fill(k)
	return p
}

// Fill resets the palette to exactly {0, ..., k-1}, reusing the existing
// word storage when it is large enough. It is the word-wide replacement for
// the k-iteration Add loop: full words are set with a single store and the
// last partial word with one mask.
func (p *Palette) Fill(k int) {
	nw := WordsFor(k)
	if cap(p.words) < nw {
		p.words = make([]uint64, nw)
	} else {
		p.words = p.words[:nw]
	}
	if nw == 0 {
		return
	}
	for i := 0; i < nw-1; i++ {
		p.words[i] = ^uint64(0)
	}
	last := ^uint64(0)
	if r := k % 64; r != 0 {
		last = 1<<r - 1
	}
	p.words[nw-1] = last
}

// Clear empties the palette, keeping its storage for reuse.
func (p *Palette) Clear() {
	for i := range p.words {
		p.words[i] = 0
	}
	p.words = p.words[:0]
}

// Add inserts color x, growing the word storage in a single resize when x
// lies beyond the current capacity (not one appended word at a time).
func (p *Palette) Add(x int) {
	w := x / 64
	if w >= len(p.words) {
		if w < cap(p.words) {
			tail := p.words[len(p.words) : w+1]
			for i := range tail {
				tail[i] = 0
			}
			p.words = p.words[:w+1]
		} else {
			grown := make([]uint64, w+1)
			copy(grown, p.words)
			p.words = grown
		}
	}
	p.words[w] |= 1 << (x % 64)
}

// Remove deletes color x if present.
func (p *Palette) Remove(x int) {
	w := x / 64
	if w < len(p.words) {
		p.words[w] &^= 1 << (x % 64)
	}
}

// Has reports whether color x is in the palette.
func (p Palette) Has(x int) bool {
	w := x / 64
	return x >= 0 && w < len(p.words) && p.words[w]&(1<<(x%64)) != 0
}

// Size returns the number of colors in the palette.
func (p Palette) Size() int {
	n := 0
	for _, w := range p.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Min returns the smallest color in the palette, or -1 if empty.
func (p Palette) Min() int {
	for i, w := range p.words {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest color in the palette, or -1 if empty.
func (p Palette) Max() int {
	for i := len(p.words) - 1; i >= 0; i-- {
		if p.words[i] != 0 {
			return i*64 + 63 - bits.LeadingZeros64(p.words[i])
		}
	}
	return -1
}

// Clone returns a copy of the palette.
func (p Palette) Clone() Palette {
	out := Palette{words: make([]uint64, len(p.words))}
	copy(out.words, p.words)
	return out
}

// Colors returns the palette's colors in increasing order.
func (p Palette) Colors() []int {
	return p.AppendColors(make([]int, 0, p.Size()))
}

// AppendColors appends the palette's colors in increasing order to dst and
// returns the extended slice — the allocation-free form of Colors for loops
// that re-enumerate palettes with a reused buffer.
func (p Palette) AppendColors(dst []int) []int {
	for i, w := range p.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, i*64+b)
			w &^= 1 << b
		}
	}
	return dst
}

// CopyFrom makes p an exact copy of q, reusing p's storage when possible.
func (p *Palette) CopyFrom(q Palette) {
	if cap(p.words) < len(q.words) {
		p.words = make([]uint64, len(q.words))
	} else {
		p.words = p.words[:len(q.words)]
	}
	copy(p.words, q.words)
}

// AndNot removes every color of q from p word-wide (p &^= q), the kernel
// behind conflict elimination: one ANDN per 64 colors instead of a
// per-color branch loop.
func (p *Palette) AndNot(q Palette) {
	n := len(p.words)
	if len(q.words) < n {
		n = len(q.words)
	}
	for i := 0; i < n; i++ {
		p.words[i] &^= q.words[i]
	}
}

// Available returns the palette [0,k) minus the colors of v's colored
// neighbors in g — the greedy choice set for v.
func Available(g *graph.Graph, c *Partial, v, k int) Palette {
	var p Palette
	AvailableInto(&p, g, c, v, k)
	return p
}

// AvailableInto fills p with the palette [0,k) minus the colors of v's
// colored neighbors, reusing p's word storage — the zero-allocation form of
// Available for hot paths that rebuild lists every phase.
func AvailableInto(p *Palette, g *graph.Graph, c *Partial, v, k int) {
	p.Fill(k)
	words := p.words
	for _, w := range g.Neighbors(v) {
		if col := c.Colors[w]; col >= 0 && col < k {
			words[col>>6] &^= 1 << (col & 63)
		}
	}
}

// GreedyComplete colors every uncolored vertex of g (in index order) with
// the smallest available color from [0,k). It returns an error if some
// vertex has no available color. It is the sequential baseline and the
// final safety net in tests.
func GreedyComplete(g *graph.Graph, c *Partial, k int) error {
	var p Palette
	for v := range c.Colors {
		if c.Colors[v] != None {
			continue
		}
		AvailableInto(&p, g, c, v, k)
		col := p.Min()
		if col < 0 {
			return fmt.Errorf("coloring: vertex %d: empty palette", v)
		}
		c.Colors[v] = col
	}
	return nil
}

// ListSlab backs a family of per-vertex palettes with one reusable word
// slab, so building n lists costs two allocations after warm-up instead of
// n. Take hands out palettes whose words alias the slab; they are valid
// until the next Take, and must not be retained across it. A palette that
// grows beyond its slab slot (Add past k) reallocates onto its own storage
// automatically because the slot's capacity is clipped.
type ListSlab struct {
	words []uint64
	lists []Palette
}

// Take returns n palettes, each Fill(k), carved out of the slab.
func (s *ListSlab) Take(n, k int) []Palette {
	per := WordsFor(k)
	need := n * per
	if cap(s.words) < need {
		s.words = make([]uint64, need)
	} else {
		s.words = s.words[:need]
	}
	if cap(s.lists) < n {
		s.lists = make([]Palette, n)
	} else {
		s.lists = s.lists[:n]
	}
	for i := 0; i < n; i++ {
		w := s.words[i*per : i*per : (i+1)*per]
		s.lists[i] = Palette{words: w}
		s.lists[i].Fill(k)
	}
	return s.lists
}
