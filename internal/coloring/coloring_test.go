package coloring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deltacoloring/internal/graph"
)

func TestPartialBasics(t *testing.T) {
	c := NewPartial(3)
	if c.Colored(0) || c.CountColored() != 0 {
		t.Fatal("fresh partial not empty")
	}
	c.Colors[1] = 4
	if !c.Colored(1) || c.CountColored() != 1 {
		t.Fatal("Colored/CountColored wrong")
	}
	d := c.Clone()
	d.Colors[1] = 7
	if c.Colors[1] != 4 {
		t.Fatal("Clone aliases")
	}
}

func TestVerifyProper(t *testing.T) {
	g := graph.Cycle(4)
	c := NewPartial(4)
	c.Colors[0], c.Colors[1] = 0, 1
	if err := VerifyProper(g, c, 2); err != nil {
		t.Fatalf("valid partial rejected: %v", err)
	}
	c.Colors[1] = 0
	if err := VerifyProper(g, c, 2); err == nil {
		t.Fatal("monochromatic edge accepted")
	}
	c.Colors[1] = 5
	if err := VerifyProper(g, c, 2); err == nil {
		t.Fatal("out-of-range color accepted")
	}
	bad := NewPartial(3)
	if err := VerifyProper(g, bad, 2); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestVerifyComplete(t *testing.T) {
	g := graph.Cycle(4)
	c := NewPartial(4)
	c.Colors = []int{0, 1, 0, 1}
	if err := VerifyComplete(g, c, 2); err != nil {
		t.Fatalf("valid 2-coloring rejected: %v", err)
	}
	c.Colors[3] = None
	if err := VerifyComplete(g, c, 2); err == nil {
		t.Fatal("incomplete coloring accepted")
	}
}

func TestVerifyLists(t *testing.T) {
	g := graph.Path(3)
	lists := []Palette{FullPalette(2), FullPalette(3), FullPalette(2)}
	c := NewPartial(3)
	c.Colors = []int{0, 2, 0}
	if err := VerifyLists(g, c, lists); err != nil {
		t.Fatalf("valid list coloring rejected: %v", err)
	}
	c.Colors[0] = 1
	c.Colors[1] = 0
	c.Colors[2] = 1
	if err := VerifyLists(g, c, lists); err != nil {
		t.Fatalf("valid list coloring rejected: %v", err)
	}
	c.Colors[2] = 2 // not in list of vertex 2
	if err := VerifyLists(g, c, lists); err == nil {
		t.Fatal("off-list color accepted")
	}
}

func TestPaletteOps(t *testing.T) {
	p := FullPalette(5)
	if p.Size() != 5 || p.Min() != 0 || p.Max() != 4 {
		t.Fatalf("FullPalette(5) wrong: size=%d min=%d max=%d", p.Size(), p.Min(), p.Max())
	}
	p.Remove(0)
	p.Remove(4)
	if p.Size() != 3 || p.Min() != 1 || p.Max() != 3 {
		t.Fatalf("after removals: size=%d min=%d max=%d", p.Size(), p.Min(), p.Max())
	}
	if p.Has(0) || !p.Has(2) {
		t.Fatal("Has wrong")
	}
	p.Add(100)
	if !p.Has(100) || p.Max() != 100 {
		t.Fatal("Add beyond word boundary failed")
	}
	var empty Palette
	if empty.Min() != -1 || empty.Max() != -1 || empty.Size() != 0 || empty.Has(3) {
		t.Fatal("zero palette not empty")
	}
	empty.Remove(7) // no-op, must not panic
	got := p.Colors()
	want := []int{1, 2, 3, 100}
	if len(got) != len(want) {
		t.Fatalf("Colors() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Colors() = %v, want %v", got, want)
		}
	}
	q := p.Clone()
	q.Remove(2)
	if !p.Has(2) {
		t.Fatal("Clone aliases")
	}
}

func TestAvailable(t *testing.T) {
	g := graph.Star(4)
	c := NewPartial(4)
	c.Colors[1], c.Colors[2] = 0, 2
	p := Available(g, c, 0, 3)
	if p.Size() != 1 || !p.Has(1) {
		t.Fatalf("available = %v", p.Colors())
	}
	// Colors beyond k are ignored.
	c.Colors[3] = 9
	p = Available(g, c, 0, 3)
	if p.Size() != 1 {
		t.Fatalf("available = %v", p.Colors())
	}
}

func TestGreedyComplete(t *testing.T) {
	g := graph.Complete(5)
	c := NewPartial(5)
	if err := GreedyComplete(g, c, 5); err != nil {
		t.Fatalf("greedy on K5 with 5 colors: %v", err)
	}
	if err := VerifyComplete(g, c, 5); err != nil {
		t.Fatalf("greedy produced invalid coloring: %v", err)
	}
	c2 := NewPartial(5)
	if err := GreedyComplete(g, c2, 4); err == nil {
		t.Fatal("greedy on K5 with 4 colors should fail")
	}
}

// Property: greedy with Δ+1 colors always completes and is proper.
func TestGreedyDeltaPlusOneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		g := graph.ErdosRenyi(n, 0.25, rng)
		c := NewPartial(n)
		k := g.MaxDegree() + 1
		if err := GreedyComplete(g, c, k); err != nil {
			return false
		}
		return VerifyComplete(g, c, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: palette operations behave like a set of small ints.
func TestPaletteSetSemantics(t *testing.T) {
	f := func(ops []uint8) bool {
		var p Palette
		ref := map[int]bool{}
		for i, op := range ops {
			x := int(op) % 130
			if i%2 == 0 {
				p.Add(x)
				ref[x] = true
			} else {
				p.Remove(x)
				delete(ref, x)
			}
		}
		if p.Size() != len(ref) {
			return false
		}
		for x := 0; x < 130; x++ {
			if p.Has(x) != ref[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
