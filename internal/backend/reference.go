package backend

import (
	"context"
	"math/rand"

	"deltacoloring/internal/core"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// pipelineBackend adapts one internal/core pipeline to the Backend
// interface: all four registered backends share the network lifecycle in
// Exec and differ only in the core entry point they call.
type pipelineBackend struct {
	name string
	caps Caps
	run  func(net *local.Network, p Params) (*core.Result, *core.RandStats, error)
}

func (b *pipelineBackend) Name() string { return b.name }
func (b *pipelineBackend) Caps() Caps   { return b.caps }

func (b *pipelineBackend) Color(ctx context.Context, g *graph.Graph, p Params, opts *RunOptions) (*Result, error) {
	var res *Result
	err := Exec(ctx, g, opts, func(net *local.Network) error {
		cres, rstats, rerr := b.run(net, p)
		if rerr != nil {
			return rerr
		}
		res = &Result{
			Colors:   cres.Coloring.Colors,
			Rounds:   cres.Rounds,
			Spans:    cres.Spans,
			Frontier: cres.Frontier,
			Stats:    cres.Stats,
			Rand:     rstats,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func init() {
	// det: Theorem 1's deterministic pipeline (Algorithm 1-3); the default
	// and the reference for bit-identity contracts.
	Register(&pipelineBackend{
		name: "det",
		caps: Caps{Checkpoints: true, Frontier: true, Faults: true},
		run: func(net *local.Network, p Params) (*core.Result, *core.RandStats, error) {
			res, err := core.ColorDeterministic(net, p.Det)
			return res, nil, err
		},
	})
	// rand: Theorem 2's shattering-based pipeline (Algorithm 4).
	Register(&pipelineBackend{
		name: "rand",
		caps: Caps{Checkpoints: true, Frontier: true, Faults: true, Randomized: true},
		run: func(net *local.Network, p Params) (*core.Result, *core.RandStats, error) {
			res, err := core.ColorRandomized(net, p.Rand, rand.New(rand.NewSource(p.Seed)))
			if err != nil {
				return nil, nil, err
			}
			rs := res.Rand
			return &res.Result, &rs, nil
		},
	})
	// simple: the Section 1.1 sketch for extremely dense graphs (every
	// almost clique hard of size exactly Δ); see core.ColorSimpleDense.
	Register(&pipelineBackend{
		name: "simple",
		caps: Caps{Checkpoints: true, Frontier: true},
		run: func(net *local.Network, p Params) (*core.Result, *core.RandStats, error) {
			res, err := core.ColorSimpleDense(net, p.Det)
			return res, nil, err
		},
	})
	// ruling: the ruling-subgraph route (arXiv 2503.04320): triad selection
	// coordinated by a ruling set on the hard-clique graph instead of the
	// matching + HEG + splitting machinery; see core.ColorRuling.
	Register(&pipelineBackend{
		name: "ruling",
		caps: Caps{Checkpoints: true, Frontier: true},
		run: func(net *local.Network, p Params) (*core.Result, *core.RandStats, error) {
			res, err := core.ColorRuling(net, p.Det)
			return res, nil, err
		},
	})
}
