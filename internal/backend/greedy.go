package backend

import (
	"context"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
	"deltacoloring/internal/shard"
)

// greedyBackend publishes the sharded subsystem's wire algorithm — greedy
// deg+1 coloring with ID-local-max symmetry breaking — as a registry
// backend. It is the one backend whose runs shard across processes
// bit-identically (see internal/shard and DESIGN.md §15), and the oracle
// the sharded conformance suite compares clusters against. Unlike the
// paper pipelines it uses Δ+1 colors, declared via Caps.PaletteSlack.
type greedyBackend struct{}

func (greedyBackend) Name() string { return "greedy" }

func (greedyBackend) Caps() Caps {
	return Caps{Checkpoints: true, Frontier: true, PaletteSlack: 1}
}

func (greedyBackend) Color(ctx context.Context, g *graph.Graph, _ Params, opts *RunOptions) (*Result, error) {
	var res *Result
	err := Exec(ctx, g, opts, func(net *local.Network) error {
		colors, rounds, serr := shard.SolveSingle(net)
		if serr != nil {
			return serr
		}
		res = &Result{
			Colors:   colors,
			Rounds:   rounds,
			Spans:    net.Spans(),
			Frontier: net.FrontierStats(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func init() {
	Register(greedyBackend{})
}
