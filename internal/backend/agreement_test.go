package backend_test

import (
	"errors"
	"strings"
	"testing"

	"deltacoloring/internal/backend"
	"deltacoloring/internal/core"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/invariant"
)

// TestCrossBackendAgreement runs every registered backend over the dense
// generator zoo with the conformance harness attached: each backend either
// refuses an out-of-scope instance with a structural error, or produces a
// coloring that the phase checkpoints and the differential oracle both
// accept. Backends never disagree on what a valid answer is.
func TestCrossBackendAgreement(t *testing.T) {
	type instance struct {
		name string
		g    *graph.Graph
	}
	ring, _ := graph.EasyCliqueRing(8, 16)
	blocks, _ := graph.EasyDenseBlocks(8, 63, 1)
	hardBip, _ := graph.HardCliqueBipartite(16, 16)
	patch, _ := graph.HardWithEasyPatch(16, 16)
	zoo := []instance{
		{"clique-ring", ring},
		{"dense-blocks", blocks},
		{"hard-bipartite", hardBip},
		{"hard-easy-patch", patch},
	}
	// Structural refusals each backend is allowed on instances outside its
	// domain (e.g. simple on graphs that are not uniformly hard).
	structural := func(err error) bool {
		return errors.Is(err, core.ErrNotDense) || errors.Is(err, core.ErrBrooks) ||
			strings.Contains(err.Error(), "use ColorDeterministic")
	}
	p := backend.Params{Det: core.TestParams(), Rand: core.TestRandomizedParams(), Seed: 41}
	p.Rand.Params = p.Det
	for _, inst := range zoo {
		for _, name := range backend.Names() {
			b, err := backend.Get(name)
			if err != nil {
				t.Fatalf("Get(%q): %v", name, err)
			}
			h := invariant.NewHarness(inst.g)
			res, err := b.Color(nil, inst.g, p, &backend.RunOptions{NetHook: h.Attach})
			if err != nil {
				if !structural(err) {
					t.Errorf("%s/%s: non-structural failure: %v", inst.name, name, err)
				}
				continue
			}
			if b.Caps().Checkpoints && h.Checks() == 0 {
				t.Errorf("%s/%s: checkpoint-capable backend published no checkpoints", inst.name, name)
			}
			// Each backend is verified against its own declared palette: the
			// paper pipelines at Δ (zero slack), the greedy wire algorithm at
			// Δ + 1 via Caps.PaletteSlack.
			bound := inst.g.MaxDegree() + b.Caps().PaletteSlack
			if err := invariant.ReferenceComplete(inst.g, res.Colors, bound); err != nil {
				t.Errorf("%s/%s: oracle rejected the coloring: %v", inst.name, name, err)
			}
		}
	}
}
