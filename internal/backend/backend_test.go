package backend

import (
	"sort"
	"strings"
	"testing"

	"deltacoloring/internal/core"
	"deltacoloring/internal/graph"
)

func TestRegistryNamesSorted(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for _, want := range []string{"det", "rand", "ruling", "simple"} {
		if _, err := Get(want); err != nil {
			t.Fatalf("reference backend %q not registered: %v", want, err)
		}
	}
	if Default().Name() != DefaultName {
		t.Fatalf("Default() = %q, want %q", Default().Name(), DefaultName)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate Register did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, `duplicate registration of "det"`) {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	Register(&pipelineBackend{name: "det"})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name Register did not panic")
		}
	}()
	Register(&pipelineBackend{})
}

func TestGetUnknownListsRegistered(t *testing.T) {
	_, err := Get("nonesuch")
	if err == nil {
		t.Fatal("Get(nonesuch) succeeded")
	}
	for _, frag := range []string{`unknown backend "nonesuch"`, "det", "rand", "ruling", "simple"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q does not mention %q", err, frag)
		}
	}
}

func TestSelectHeuristic(t *testing.T) {
	p := Params{Det: core.TestParams()}

	sparse := graph.Cycle(32)
	if got := Select(sparse, p).Name(); got != "det" {
		t.Fatalf("sparse graph selected %q, want det", got)
	}

	hardBip, _ := graph.HardCliqueBipartite(16, 16)
	if got := Select(hardBip, p).Name(); got != "simple" && got != "ruling" {
		t.Fatalf("all-hard graph selected %q, want simple or ruling", got)
	}

	ring, _ := graph.EasyCliqueRing(8, 16)
	if got := Select(ring, p).Name(); got != "det" {
		t.Fatalf("all-easy graph selected %q, want det", got)
	}

	patch, _ := graph.HardWithEasyPatch(16, 16)
	if got := Select(patch, p).Name(); got != "ruling" {
		t.Fatalf("hard-dominated graph selected %q, want ruling", got)
	}

	// On dense instances the selected backend must actually color its graph
	// (sparse inputs are rejected by every pipeline with ErrNotDense).
	for _, g := range []*graph.Graph{hardBip, ring, patch} {
		b := Select(g, p)
		res, err := b.Color(nil, g, p, nil)
		if err != nil {
			t.Fatalf("selected backend %q failed: %v", b.Name(), err)
		}
		if len(res.Colors) != g.N() {
			t.Fatalf("backend %q returned %d colors for %d vertices", b.Name(), len(res.Colors), g.N())
		}
	}
}

func TestSelectZeroParams(t *testing.T) {
	hardBip, _ := graph.HardCliqueBipartite(16, 16)
	// A zero Params must not crash the probe; Select falls back to defaults.
	if b := Select(hardBip, Params{}); b == nil {
		t.Fatal("Select returned nil backend")
	}
}

func TestRaceWinnerMatchesSolo(t *testing.T) {
	g, _ := graph.HardCliqueBipartite(16, 16)
	p := Params{Det: core.TestParams()}
	det, rul := mustGet("det"), mustGet("ruling")
	res, err := Race(nil, g, p, nil, det, rul)
	if err != nil {
		t.Fatalf("Race: %v", err)
	}
	if res.Winner != "det" && res.Winner != "ruling" {
		t.Fatalf("unexpected winner %q", res.Winner)
	}
	if res.Loser == res.Winner || res.Loser == "" {
		t.Fatalf("bad loser %q for winner %q", res.Loser, res.Winner)
	}
	solo, err := mustGet(res.Winner).Color(nil, g, p, nil)
	if err != nil {
		t.Fatalf("solo %s: %v", res.Winner, err)
	}
	for v, c := range res.Colors {
		if c != solo.Colors[v] {
			t.Fatalf("race winner %s diverged from solo run at vertex %d: %d != %d", res.Winner, v, c, solo.Colors[v])
		}
	}
}

func TestRaceSameBackend(t *testing.T) {
	g, _ := graph.EasyCliqueRing(8, 16)
	det := mustGet("det")
	res, err := Race(nil, g, Params{Det: core.TestParams()}, nil, det, det)
	if err != nil {
		t.Fatalf("Race: %v", err)
	}
	if res.Winner != "det" || res.Loser != "" {
		t.Fatalf("same-backend race: winner %q loser %q", res.Winner, res.Loser)
	}
}

func TestRaceBothFail(t *testing.T) {
	// A sparse graph is rejected by every dense-only pipeline.
	g := graph.Cycle(32)
	_, err := Race(nil, g, Params{Det: core.TestParams()}, nil, mustGet("simple"), mustGet("ruling"))
	if err == nil {
		t.Fatal("race of two failing backends succeeded")
	}
	if !strings.Contains(err.Error(), "both failed") {
		t.Fatalf("unexpected race error: %v", err)
	}
}
