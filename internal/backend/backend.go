// Package backend defines the pluggable Δ-coloring pipeline seam: every
// complete-coloring algorithm in the repository (the paper's deterministic
// and randomized pipelines, the simple-dense ablation, the ruling-subgraph
// route) is published as a Backend behind a process-global registry, so the
// public API, the service, the dynamic store, the benchmark arena, and the
// conformance matrix all dispatch by name instead of hard-wiring entry
// points. See DESIGN.md §12 for the backend contract.
package backend

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"deltacoloring/internal/core"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// Params bundles the parameterizations a backend may need. Deterministic
// backends read Det; randomized backends read Rand and Seed. Callers that
// dispatch by name should fill both presets.
type Params struct {
	// Det parameterizes the deterministic pipelines.
	Det core.Params
	// Rand parameterizes randomized backends.
	Rand core.RandomizedParams
	// Seed drives randomized backends; deterministic ones ignore it.
	Seed int64
}

// Caps are a backend's capability flags. They are advisory: layers use them
// to decide what a backend's runs can be asked to do (attach the
// conformance harness, cross-check frontier scheduling, replay fault
// plans), not to change the backend's own behavior.
type Caps struct {
	// Checkpoints: the backend publishes phase checkpoints consumable by
	// the internal/invariant harness (including the "final" artifact).
	Checkpoints bool
	// Frontier: the backend's runs are bit-identical with frontier
	// scheduling on and off, so engine cross-checks apply.
	Frontier bool
	// Faults: the backend participates in fault-injection replay suites.
	Faults bool
	// Randomized: the backend consumes Params.Rand/Params.Seed.
	Randomized bool
	// PaletteSlack is how many colors beyond Δ the backend's results may
	// use: verification bounds are MaxDegree() + PaletteSlack. The zero
	// value keeps the paper pipelines' strict Δ-coloring contract; the
	// greedy/sharded wire algorithm declares 1 (it is a Δ+1 coloring).
	PaletteSlack int
}

// RunOptions tunes one Color call. A nil pointer means defaults.
type RunOptions struct {
	// SpanHook receives each phase span as it closes, even on failure.
	SpanHook func(local.Span)
	// Workers sets the Exchange worker count (0 keeps the default of 1).
	Workers int
	// DisableFrontier forces every state-engine round onto the dense path.
	DisableFrontier bool
	// NetHook, when non-nil, observes the freshly configured network before
	// the run starts. It is the seam for attaching the conformance harness
	// (invariant.Harness.Attach) or fault plans without the backend package
	// importing those layers.
	NetHook func(*local.Network)
}

// Result is the outcome of a backend run.
type Result struct {
	// Colors assigns each vertex a color in [0, Δ).
	Colors []int
	// Rounds is the total number of LOCAL rounds charged.
	Rounds int
	// Spans breaks the rounds down by phase.
	Spans []local.Span
	// Frontier reports sparse/dense engine rounds and skipped evaluations.
	Frontier local.FrontierStats
	// Stats carries structural measurements.
	Stats core.Stats
	// Rand carries shattering statistics for randomized backends, nil
	// otherwise.
	Rand *core.RandStats
}

// Backend is one complete Δ-coloring pipeline.
type Backend interface {
	// Name is the registry key (also the `?backend=` / -backend value).
	Name() string
	// Caps reports the backend's capability flags.
	Caps() Caps
	// Color runs the pipeline on g. The context's deadline/cancellation is
	// checked at every LOCAL round boundary; opts may be nil.
	Color(ctx context.Context, g *graph.Graph, p Params, opts *RunOptions) (*Result, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Backend{}
)

// Register adds b to the process-global registry. It panics on an empty
// name or a duplicate registration: backends are wired at init time and a
// name collision is a programming error, not a runtime condition.
func Register(b Backend) {
	name := b.Name()
	if name == "" {
		panic("backend: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of %q", name))
	}
	registry[name] = b
}

// Get looks up a backend by name. The error lists the registered names so
// CLI flags and HTTP handlers can fail fast with an actionable message.
func Get(name string) (Backend, error) {
	regMu.RLock()
	b, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return b, nil
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DefaultName is the registry entry used when no backend is requested: the
// paper's deterministic pipeline.
const DefaultName = "det"

// Default returns the default backend.
func Default() Backend {
	b, err := Get(DefaultName)
	if err != nil {
		panic(err) // registered in this package's init
	}
	return b
}

// NewNetwork builds a local.Network for g wired per ctx and opts: the
// context's cancellation becomes a round-boundary interrupt, then the span
// hook, worker count, frontier switch, and finally NetHook are applied (in
// that order, so NetHook observes the fully configured network). This is
// the one place the repository configures run networks; every entry point
// goes through it.
func NewNetwork(ctx context.Context, g *graph.Graph, opts *RunOptions) *local.Network {
	net := local.New(g)
	if ctx != nil && ctx.Done() != nil {
		net.SetInterrupt(func() error { return ctx.Err() })
	}
	if opts != nil {
		if opts.SpanHook != nil {
			net.SetSpanHook(opts.SpanHook)
		}
		if opts.Workers != 0 {
			net.SetWorkers(opts.Workers)
		}
		if opts.DisableFrontier {
			net.SetFrontier(false)
		}
		if opts.NetHook != nil {
			opts.NetHook(net)
		}
	}
	return net
}

// RecoverInterrupt converts the local.Interrupt panic raised by a cancelled
// context back into an ordinary error return; any other panic propagates.
func RecoverInterrupt(err *error) {
	if r := recover(); r != nil {
		ip, ok := r.(local.Interrupt)
		if !ok {
			panic(r)
		}
		*err = ip.Err
	}
}

// Exec runs fn on a freshly configured network for g, closing it on the
// way out and translating interrupt panics into errors. It is the shared
// context/panic-recovery boilerplate of every run entry point.
func Exec(ctx context.Context, g *graph.Graph, opts *RunOptions, fn func(*local.Network) error) (err error) {
	net := NewNetwork(ctx, g, opts)
	defer net.Close()
	defer RecoverInterrupt(&err)
	return fn(net)
}
