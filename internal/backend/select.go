package backend

import (
	"context"
	"fmt"

	"deltacoloring/internal/acd"
	"deltacoloring/internal/core"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
	"deltacoloring/internal/loophole"
)

// Select picks a backend for g by structure: Δ, density, and the shape of
// the almost-clique decomposition. The probe computes the ACD and the
// hard/easy classification on a throwaway network (the choice is an
// engineering heuristic, not part of the algorithm, so its rounds are not
// charged to the caller's run):
//
//   - degenerate or low-Δ inputs, sparse graphs, and easy-dominated
//     decompositions go to the reference deterministic pipeline;
//   - the extremely dense shape (every almost clique a complete hard
//     clique of size exactly Δ) goes to the simple-dense route;
//   - hard-dominated decompositions go to the ruling-subgraph route,
//     which skips the matching/HEG/splitting machinery.
//
// Select never fails: anything it cannot confidently classify runs on the
// default backend, and the selected backend still enforces every runtime
// invariant itself.
func Select(g *graph.Graph, p Params) Backend {
	delta := g.MaxDegree()
	if g.N() == 0 || delta < 6 {
		return Default()
	}
	if p.Det.Eps <= 0 || p.Det.Eps >= 1 {
		p.Det = core.DefaultParams()
	}
	net := local.New(g)
	defer net.Close()
	a, err := acd.Compute(net, p.Det.Eps)
	if err != nil || !a.IsDense() {
		return Default()
	}
	cl := loophole.Classify(g, a)
	hard := 0
	simpleShape := true
	for ci, members := range a.Cliques {
		if !cl.Easy[ci] {
			hard++
		} else {
			simpleShape = false
		}
		if len(members) != delta || !g.IsClique(members) {
			simpleShape = false
		}
	}
	if simpleShape && hard == len(a.Cliques) {
		return mustGet("simple")
	}
	if 2*hard >= len(a.Cliques) && hard > 0 {
		return mustGet("ruling")
	}
	return Default()
}

func mustGet(name string) Backend {
	b, err := Get(name)
	if err != nil {
		panic(err) // registered in this package's init
	}
	return b
}

// RaceResult is the outcome of a Race: the winner's result plus who won.
type RaceResult struct {
	*Result
	// Winner is the backend whose result is reported.
	Winner string
	// Loser is the cancelled (or failed) contender, empty if the
	// contenders were the same backend.
	Loser string
}

// Race runs two backends concurrently under one context and cancels the
// loser: the first successful result wins and the other run is aborted at
// its next LOCAL round boundary. If the first finisher failed, the second
// is awaited; if both fail, both errors are reported. Hooks in opts
// (SpanHook, NetHook) observe both contenders concurrently and must be
// safe for that — do not attach a conformance harness to a race.
func Race(ctx context.Context, g *graph.Graph, p Params, opts *RunOptions, b1, b2 Backend) (*RaceResult, error) {
	if b1.Name() == b2.Name() {
		res, err := b1.Color(ctx, g, p, opts)
		if err != nil {
			return nil, err
		}
		return &RaceResult{Result: res, Winner: b1.Name()}, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		name string
		res  *Result
		err  error
	}
	ch := make(chan outcome, 2)
	for _, b := range []Backend{b1, b2} {
		go func(b Backend) {
			res, err := b.Color(rctx, g, p, opts)
			ch <- outcome{name: b.Name(), res: res, err: err}
		}(b)
	}
	first := <-ch
	if first.err == nil {
		cancel()
		<-ch // join the loser so no goroutine outlives the call
		loser := b1.Name()
		if first.name == loser {
			loser = b2.Name()
		}
		return &RaceResult{Result: first.res, Winner: first.name, Loser: loser}, nil
	}
	second := <-ch
	if second.err == nil {
		return &RaceResult{Result: second.res, Winner: second.name, Loser: first.name}, nil
	}
	return nil, fmt.Errorf("backend: race %s vs %s: both failed: %v; %v",
		b1.Name(), b2.Name(), first.err, second.err)
}
