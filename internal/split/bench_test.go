package split

import (
	"math/rand"
	"testing"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func BenchmarkSplitFourWay(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomRegular(400, 28, rng)
	edges := g.Edges()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Split(local.New(g), g.N(), edges, 2, 1.0/100); err != nil {
			b.Fatal(err)
		}
	}
}
