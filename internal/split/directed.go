package split

import (
	"fmt"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// SplitDirected computes a *directed* degree splitting (Lemma 21, part 1):
// an orientation of the edges such that every vertex's out-degree deviates
// from d(v)/2 by at most ε·d(v)/2 + 2 (discrepancy between in- and
// out-degree at most ε·d(v)+4, mirroring the undirected bound). It returns
// tail[e], the chosen tail of each edge.
//
// The construction reuses the Euler-trail machinery of the undirected
// split: edges are chained into trails and oriented *along* the trail
// direction within each segment, so every through-pair at a vertex
// contributes exactly one incoming and one outgoing edge; only segment
// boundaries and trail endpoints can unbalance a vertex. Offsets are
// verified and retried exactly like split2.
func SplitDirected(net *local.Network, n int, edges []graph.Edge, eps float64) ([]int, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("split: eps must be in (0,1), got %v", eps)
	}
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n || e.U == e.V {
			return nil, fmt.Errorf("split: invalid edge {%d,%d}", e.U, e.V)
		}
	}
	if len(edges) == 0 {
		return nil, nil
	}
	segLen := int(4 / eps)
	if segLen < 2 {
		segLen = 2
	}
	trails := buildTrails(n, edges)
	deg := make([]int, n)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	logN := 0
	for m := n; m > 0; m >>= 1 {
		logN++
	}
	for attempt := 0; attempt < maxRetries; attempt++ {
		net.Charge(segLen + 6 + logN)
		tail := orientTrails(n, edges, trails, segLen, attempt)
		if v, _ := directedViolation(n, edges, tail, deg, eps); v < 0 {
			return tail, nil
		}
	}
	return nil, fmt.Errorf("split: directed discrepancy bound eps*d+4 not met after %d retries", maxRetries)
}

// orientTrails walks each trail and orients edges along the walk,
// reversing direction at each segment boundary (the reversal spreads the
// boundary imbalance like the color reset does in the undirected case).
func orientTrails(n int, edges []graph.Edge, trails []trail, segLen, attempt int) []int {
	tail := make([]int, len(edges))
	for ti, t := range trails {
		offset := (ti*31 + attempt*17 + attempt*attempt*7) % segLen
		forward := true
		// Track the entry vertex of each edge along the walk.
		at := startVertex(edges, t)
		for j, e := range t.edges {
			if j > 0 && (j+offset)%segLen == 0 {
				forward = !forward
			}
			u, v := edges[e].U, edges[e].V
			if at != u && at != v {
				panic(fmt.Sprintf("split: trail walk derailed at edge %d", e))
			}
			exit := u + v - at
			if forward {
				tail[e] = at
			} else {
				tail[e] = exit
			}
			at = exit
		}
	}
	return tail
}

// startVertex returns the vertex at which the trail walk begins: the
// endpoint of the first edge that is NOT shared with the second edge (or
// U for single-edge and cycle trails, matching buildTrails' walk order).
func startVertex(edges []graph.Edge, t trail) int {
	first := edges[t.edges[0]]
	if len(t.edges) == 1 {
		return first.U
	}
	second := edges[t.edges[1]]
	if first.U == second.U || first.U == second.V {
		return first.V
	}
	return first.U
}

// directedViolation returns a violating vertex and its |out - in|
// discrepancy, or (-1, 0) if every vertex is within eps*d(v)+4.
func directedViolation(n int, edges []graph.Edge, tail []int, deg []int, eps float64) (int, int) {
	diff := make([]int, n)
	for e, t := range tail {
		other := edges[e].U + edges[e].V - t
		diff[t]++     // outgoing at the tail
		diff[other]-- // incoming at the head
	}
	for v := 0; v < n; v++ {
		d := diff[v]
		if d < 0 {
			d = -d
		}
		if float64(d) > eps*float64(deg[v])+4 {
			return v, d
		}
	}
	return -1, 0
}

// VerifyDirected checks the Lemma 21(1)-style bound |out(v) - in(v)| <=
// eps*d(v) + 4 for every vertex.
func VerifyDirected(n int, edges []graph.Edge, tail []int, eps float64) error {
	if len(tail) != len(edges) {
		return fmt.Errorf("split: %d tails for %d edges", len(tail), len(edges))
	}
	deg := make([]int, n)
	for e, t := range tail {
		if t != edges[e].U && t != edges[e].V {
			return fmt.Errorf("split: edge (%d,%d): tail %d is not an endpoint", edges[e].U, edges[e].V, t)
		}
		deg[edges[e].U]++
		deg[edges[e].V]++
	}
	if v, d := directedViolation(n, edges, tail, deg, eps); v >= 0 {
		return fmt.Errorf("split: vertex %d: |out-in| discrepancy %d exceeds eps*d+4 = %.2f",
			v, d, eps*float64(deg[v])+4)
	}
	return nil
}
