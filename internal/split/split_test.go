package split

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func TestSplit2OnRegularGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.RandomRegular(100, 8, rng)
	net := local.New(g)
	edges := g.Edges()
	part, err := Split(net, g.N(), edges, 1, 0.25)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if err := VerifyParts(g.N(), edges, part, 1, 0.25); err != nil {
		t.Fatal(err)
	}
	if net.Rounds() == 0 {
		t.Fatal("split charged no rounds")
	}
}

func TestSplitFourParts(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := graph.RandomRegular(120, 16, rng)
	net := local.New(g)
	edges := g.Edges()
	part, err := Split(net, g.N(), edges, 2, 0.1)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if err := VerifyParts(g.N(), edges, part, 2, 0.1); err != nil {
		t.Fatal(err)
	}
	// Each part should get roughly a quarter of the edges.
	counts := make([]int, 4)
	for _, p := range part {
		counts[p]++
	}
	for p, c := range counts {
		if c < len(edges)/8 || c > len(edges)/2 {
			t.Fatalf("part %d has %d of %d edges", p, c, len(edges))
		}
	}
}

func TestSplitMultigraph(t *testing.T) {
	// Parallel edges between two vertices must divide evenly too.
	edges := make([]graph.Edge, 12)
	for i := range edges {
		edges[i] = graph.Edge{U: 0, V: 1}
	}
	net := local.New(graph.Path(2))
	part, err := Split(net, 2, edges, 1, 0.3)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if err := VerifyParts(2, edges, part, 1, 0.3); err != nil {
		t.Fatal(err)
	}
}

func TestSplitZeroLevels(t *testing.T) {
	g := graph.Cycle(6)
	part, err := Split(local.New(g), 6, g.Edges(), 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatal("level-0 split must keep everything in part 0")
		}
	}
}

func TestSplitEmptyEdgeList(t *testing.T) {
	part, err := Split(local.New(graph.Path(3)), 3, nil, 2, 0.5)
	if err != nil || len(part) != 0 {
		t.Fatalf("empty split: %v %v", part, err)
	}
}

func TestSplitRejectsBadInput(t *testing.T) {
	net := local.New(graph.Path(3))
	if _, err := Split(net, 3, []graph.Edge{{U: 0, V: 5}}, 1, 0.5); err == nil {
		t.Fatal("accepted out-of-range endpoint")
	}
	if _, err := Split(net, 3, []graph.Edge{{U: 1, V: 1}}, 1, 0.5); err == nil {
		t.Fatal("accepted self-loop")
	}
	if _, err := Split(net, 3, nil, -1, 0.5); err == nil {
		t.Fatal("accepted negative level")
	}
	if _, err := Split(net, 3, nil, 1, 0); err == nil {
		t.Fatal("accepted eps=0")
	}
}

func TestBuildTrailsCoversAllEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := graph.ErdosRenyi(40, 0.2, rng)
	edges := g.Edges()
	trails := buildTrails(g.N(), edges)
	seen := make([]bool, len(edges))
	for _, tr := range trails {
		for _, e := range tr.edges {
			if seen[e] {
				t.Fatalf("edge %d in two trails", e)
			}
			seen[e] = true
		}
	}
	for e, s := range seen {
		if !s {
			t.Fatalf("edge %d missing from trails", e)
		}
	}
}

func TestBuildTrailsCycleDetection(t *testing.T) {
	g := graph.Cycle(8)
	trails := buildTrails(g.N(), g.Edges())
	if len(trails) != 1 || !trails[0].cycle || len(trails[0].edges) != 8 {
		t.Fatalf("C8 should yield one 8-edge cycle trail, got %+v", trails)
	}
	p := graph.Path(5)
	trails = buildTrails(p.N(), p.Edges())
	if len(trails) != 1 || trails[0].cycle || len(trails[0].edges) != 4 {
		t.Fatalf("P5 should yield one 4-edge path trail, got %+v", trails)
	}
}

func TestVerifyPartsCatchesSkew(t *testing.T) {
	g := graph.Complete(8)
	edges := g.Edges()
	part := make([]int, len(edges)) // all edges in part 0
	if err := VerifyParts(g.N(), edges, part, 1, 0.1); err == nil {
		t.Fatal("fully skewed split accepted")
	}
	if err := VerifyParts(g.N(), edges, part[:3], 1, 0.1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	bad := make([]int, len(edges))
	bad[0] = 7
	if err := VerifyParts(g.N(), edges, bad, 1, 0.1); err == nil {
		t.Fatal("out-of-range part accepted")
	}
}

// Property: splitting random regular graphs at various eps always meets the
// Corollary 22 band.
func TestSplitProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 4 + 2*rng.Intn(5)
		n := 40 + rng.Intn(60)
		if n*d%2 == 1 {
			n++
		}
		g := graph.RandomRegular(n, d, rng)
		i := 1 + rng.Intn(2)
		eps := 0.1 + rng.Float64()*0.3
		edges := g.Edges()
		part, err := Split(local.New(g), g.N(), edges, i, eps)
		if err != nil {
			return false
		}
		return VerifyParts(g.N(), edges, part, i, eps) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The paper's Phase 2 configuration: eps' = 1/100, i = 2 on a graph whose
// "+" vertices have degree >= 28; every vertex must keep at least 2 edges in
// part 0 and at most deg/4 + eps*deg + 4 in any part (Lemma 13 arithmetic).
func TestSplitLemma13Configuration(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	g := graph.RandomRegular(64, 28, rng)
	edges := g.Edges()
	part, err := Split(local.New(g), g.N(), edges, 2, 1.0/100)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if err := VerifyParts(g.N(), edges, part, 2, 1.0/100); err != nil {
		t.Fatal(err)
	}
	inPart0 := make([]int, g.N())
	for e, p := range part {
		if p == 0 {
			inPart0[edges[e].U]++
			inPart0[edges[e].V]++
		}
	}
	for v, c := range inPart0 {
		if c < 2 {
			t.Fatalf("vertex %d kept only %d part-0 edges, Lemma 13 needs >= 2", v, c)
		}
	}
}
