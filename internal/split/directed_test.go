package split

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func TestSplitDirectedRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, d := range []int{4, 8, 16} {
		g := graph.RandomRegular(100, d, rng)
		edges := g.Edges()
		tail, err := SplitDirected(local.New(g), g.N(), edges, 0.25)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if err := VerifyDirected(g.N(), edges, tail, 0.25); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSplitDirectedCycleIsPerfect(t *testing.T) {
	// A single cycle orients along the trail: every vertex gets exactly
	// one in and one out (up to segment-boundary flips, discrepancy <= 2).
	g := graph.Cycle(30)
	edges := g.Edges()
	tail, err := SplitDirected(local.New(g), g.N(), edges, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDirected(g.N(), edges, tail, 0.5); err != nil {
		t.Fatal(err)
	}
}

func TestSplitDirectedMultigraph(t *testing.T) {
	edges := make([]graph.Edge, 10)
	for i := range edges {
		edges[i] = graph.Edge{U: 0, V: 1}
	}
	tail, err := SplitDirected(local.New(graph.Path(2)), 2, edges, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDirected(2, edges, tail, 0.3); err != nil {
		t.Fatal(err)
	}
	// 10 parallel edges: out-degrees should split about evenly.
	out0 := 0
	for _, tl := range tail {
		if tl == 0 {
			out0++
		}
	}
	if out0 < 2 || out0 > 8 {
		t.Fatalf("parallel edges split %d/10", out0)
	}
}

func TestSplitDirectedEmptyAndInvalid(t *testing.T) {
	if tail, err := SplitDirected(local.New(graph.Path(2)), 2, nil, 0.5); err != nil || tail != nil {
		t.Fatalf("empty: %v %v", tail, err)
	}
	if _, err := SplitDirected(local.New(graph.Path(2)), 2, []graph.Edge{{U: 0, V: 3}}, 0.5); err == nil {
		t.Fatal("accepted out-of-range edge")
	}
	if _, err := SplitDirected(local.New(graph.Path(2)), 2, []graph.Edge{{U: 0, V: 1}}, 0); err == nil {
		t.Fatal("accepted eps=0")
	}
}

func TestVerifyDirectedCatchesViolations(t *testing.T) {
	g := graph.Star(9)
	edges := g.Edges()
	// All edges oriented out of the center: discrepancy 8 at vertex 0.
	tail := make([]int, len(edges))
	if err := VerifyDirected(g.N(), edges, tail, 0.1); err == nil {
		t.Fatal("fully unbalanced orientation accepted")
	}
	if err := VerifyDirected(g.N(), edges, tail[:2], 0.1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	bad := append([]int(nil), tail...)
	bad[0] = 5 // not an endpoint of edge {0,1}
	if err := VerifyDirected(g.N(), edges, bad, 0.9); err == nil {
		t.Fatal("non-endpoint tail accepted")
	}
}

// TestVerifyDirectedEpsilonBoundary pins the strictness of the Lemma 21(1)
// bound |out(v) - in(v)| <= eps*d(v) + 4: a discrepancy exactly at the bound
// passes, and the next reachable discrepancy above it fails. Star(8) puts
// degree 7 on the center; with eps = 1/7 the center's bound is exactly
// 1 + 4 = 5. Orienting o of the 7 edges outward gives discrepancy |2o - 7|,
// so 6 outward hits the bound exactly (5) and 7 outward exceeds it (7).
// Leaves have bound 1/7 + 4 and discrepancy 1, never violating.
func TestVerifyDirectedEpsilonBoundary(t *testing.T) {
	g := graph.Star(8)
	edges := g.Edges()
	if len(edges) != 7 {
		t.Fatalf("Star(8) has %d edges, want 7", len(edges))
	}
	eps := 1.0 / 7.0
	orient := func(outward int) []int {
		tail := make([]int, len(edges))
		for i, e := range edges {
			if i < outward {
				tail[i] = 0
			} else {
				tail[i] = e.U + e.V // the leaf endpoint
			}
		}
		return tail
	}
	if err := VerifyDirected(g.N(), edges, orient(6), eps); err != nil {
		t.Fatalf("discrepancy exactly at eps*d+4 rejected: %v", err)
	}
	if err := VerifyDirected(g.N(), edges, orient(7), eps); err == nil {
		t.Fatal("discrepancy above eps*d+4 accepted")
	}
	// The violation names the offending vertex in the unified format.
	err := VerifyDirected(g.N(), edges, orient(7), eps)
	if !strings.Contains(err.Error(), "split: vertex 0:") {
		t.Fatalf("violation does not name the center: %v", err)
	}
}

func TestSplitDirectedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + 2*rng.Intn(40)
		d := 4 + 2*rng.Intn(4)
		g := graph.RandomRegular(n, d, rng)
		eps := 0.15 + rng.Float64()*0.3
		edges := g.Edges()
		tail, err := SplitDirected(local.New(g), g.N(), edges, eps)
		if err != nil {
			return false
		}
		return VerifyDirected(g.N(), edges, tail, eps) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
