// Package split implements deterministic degree splitting (the paper's
// Lemma 21 and Corollary 22): partitioning the edges of a (multi)graph into
// 2^i parts so that every vertex's incident edges divide almost evenly,
// with per-part discrepancy at most ε·d(v) + a for a small additive a.
//
// One 2-way split follows the classic Euler-partition recipe:
//
//  1. At every vertex, pair up incident edge-endpoints; the pairing chains
//     edges into trails (paths and cycles) covering all edges.
//  2. Segment each trail into pieces of length L = Θ(1/ε). In LOCAL this is
//     a ruling set along the trail (O(L + log* n) rounds); the simulator
//     performs the walk centrally and charges those rounds.
//  3. 2-color the edges alternately inside each segment. Through-pairs at a
//     vertex contribute one edge to each side unless a segment boundary
//     falls exactly between the pair, so the discrepancy at v is at most
//     2·(boundary pairs at v) + 1, in expectation ε·d(v)/2 for random
//     offsets. Offsets are chosen deterministically per trail and the
//     result is verified against the ε·d(v)+4 bound; on violation the
//     offsets are rotated and the step retried (each retry charges rounds).
//
// Splitting into 2^i parts recurses i times. The final assignment satisfies
// Corollary 22's band (verified by VerifyParts and by the E6 bench).
package split

import (
	"fmt"
	"math"
	"sort"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// maxRetries bounds the verify-and-retry loop of one split level.
const maxRetries = 32

// Split partitions the given edge list (parallel edges allowed; endpoints
// in [0, n)) into 2^i parts. It returns part[e] in [0, 2^i) for each edge
// index e. The per-level discrepancy guarantee is ε·d(v)+4; see VerifyParts
// for the compounded bound.
func Split(net *local.Network, n int, edges []graph.Edge, i int, eps float64) ([]int, error) {
	if i < 0 {
		return nil, fmt.Errorf("split: negative level count %d", i)
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("split: eps must be in (0,1), got %v", eps)
	}
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n || e.U == e.V {
			return nil, fmt.Errorf("split: invalid edge {%d,%d}", e.U, e.V)
		}
	}
	part := make([]int, len(edges))
	if i == 0 || len(edges) == 0 {
		return part, nil
	}
	// Recursive halving: indices of edges in each current group.
	groups := [][]int{all(len(edges))}
	for level := 0; level < i; level++ {
		var next [][]int
		for _, idxs := range groups {
			sub := make([]graph.Edge, len(idxs))
			for j, e := range idxs {
				sub[j] = edges[e]
			}
			half, err := split2(net, n, sub, eps)
			if err != nil {
				return nil, err
			}
			var a, b []int
			for j, e := range idxs {
				if half[j] == 0 {
					a = append(a, e)
				} else {
					b = append(b, e)
				}
			}
			next = append(next, a, b)
		}
		groups = next
	}
	for p, idxs := range groups {
		for _, e := range idxs {
			part[e] = p
		}
	}
	return part, nil
}

func all(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// split2 performs one verified 2-way split with discrepancy <= eps*d(v)+4.
func split2(net *local.Network, n int, edges []graph.Edge, eps float64) ([]int, error) {
	segLen := int(math.Ceil(4 / eps))
	if segLen < 2 {
		segLen = 2
	}
	trails := buildTrails(n, edges)
	deg := make([]int, n)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	// Round charge per level: segment-local work (L) plus the inherent
	// Θ(log n) of deterministic degree splitting (Lemma 21), with unit
	// constants — see DESIGN.md on round accounting for this substitution.
	logN := 0
	for m := n; m > 0; m >>= 1 {
		logN++
	}
	for attempt := 0; attempt < maxRetries; attempt++ {
		net.Charge(segLen + 6 + logN)
		color := colorTrails(trails, len(edges), segLen, attempt)
		if maxViolation(n, edges, color, deg, eps) < 0 {
			return color, nil
		}
	}
	return nil, fmt.Errorf("split: discrepancy bound eps*d+4 not met after %d offset retries", maxRetries)
}

// maxViolation returns a violating vertex, or -1 if the eps*d+4 bound holds
// everywhere.
func maxViolation(n int, edges []graph.Edge, color []int, deg []int, eps float64) int {
	diff := make([]int, n)
	for i, e := range edges {
		d := 1
		if color[i] == 1 {
			d = -1
		}
		diff[e.U] += d
		diff[e.V] += d
	}
	for v := 0; v < n; v++ {
		if math.Abs(float64(diff[v])) > eps*float64(deg[v])+4 {
			return v
		}
	}
	return -1
}

// trail is a maximal chain of edge indices linked by the Euler pairing;
// cycle marks closed trails.
type trail struct {
	edges []int
	cycle bool
}

// buildTrails computes the Euler partition: at every vertex, incident edge
// endpoints are paired consecutively (sorted by edge index for
// determinism), chaining the edges into paths and cycles.
func buildTrails(n int, edges []graph.Edge) []trail {
	// incidence[v] lists (edge index, side) sorted by edge index.
	type inc struct{ e, side int }
	incidence := make([][]inc, n)
	for i, e := range edges {
		incidence[e.U] = append(incidence[e.U], inc{e: i, side: 0})
		incidence[e.V] = append(incidence[e.V], inc{e: i, side: 1})
	}
	// partner[e][side] = (edge, side entering that edge) or -1.
	type ref struct{ e, side int }
	partner := make([][2]ref, len(edges))
	for i := range partner {
		partner[i] = [2]ref{{e: -1}, {e: -1}}
	}
	for v := 0; v < n; v++ {
		l := incidence[v]
		sort.Slice(l, func(a, b int) bool { return l[a].e < l[b].e })
		for j := 0; j+1 < len(l); j += 2 {
			a, b := l[j], l[j+1]
			partner[a.e][a.side] = ref{e: b.e, side: b.side}
			partner[b.e][b.side] = ref{e: a.e, side: a.side}
		}
	}
	visited := make([]bool, len(edges))
	var trails []trail
	walk := func(start, startSide int) trail {
		var t trail
		e, side := start, startSide
		for {
			visited[e] = true
			t.edges = append(t.edges, e)
			// Leave through the other endpoint of e.
			out := 1 - side
			nxt := partner[e][out]
			if nxt.e == -1 {
				return t
			}
			if nxt.e == start && nxt.side == startSide {
				t.cycle = true
				return t
			}
			e, side = nxt.e, nxt.side
		}
	}
	// Paths first: start from unpaired endpoints.
	for i := range edges {
		if visited[i] {
			continue
		}
		if partner[i][0].e == -1 {
			trails = append(trails, walk(i, 0))
		} else if partner[i][1].e == -1 {
			trails = append(trails, walk(i, 1))
		}
	}
	// Remaining edges form cycles.
	for i := range edges {
		if !visited[i] {
			trails = append(trails, walk(i, 0))
		}
	}
	return trails
}

// colorTrails assigns 0/1 to each edge: trails are cut into segments of
// length segLen with a per-trail, per-attempt offset, and each segment is
// colored alternately from 0.
func colorTrails(trails []trail, numEdges, segLen, attempt int) []int {
	color := make([]int, numEdges)
	for ti, t := range trails {
		offset := (ti*31 + attempt*17 + attempt*attempt*7) % segLen
		pos := 0
		for j, e := range t.edges {
			if j > 0 && (j+offset)%segLen == 0 {
				pos = 0 // segment boundary: restart alternation
			}
			color[e] = pos % 2
			pos++
		}
	}
	return color
}

// VerifyParts checks the Corollary 22 band: for every vertex v and part p,
// the number of part-p edges at v lies within
// [d(v)/2^i - eps*d(v) - a, d(v)/2^i + eps*d(v) + a], with
// a = 2*sum_{j<i} (1/2 + eps/4)^j as in the paper.
func VerifyParts(n int, edges []graph.Edge, part []int, i int, eps float64) error {
	if len(part) != len(edges) {
		return fmt.Errorf("split: %d part labels for %d edges", len(part), len(edges))
	}
	k := 1 << i
	a := 0.0
	for j := 0; j < i; j++ {
		a += 2 * math.Pow(0.5+eps/4, float64(j))
	}
	deg := make([]int, n)
	byPart := make([][]int, k)
	for p := range byPart {
		byPart[p] = make([]int, n)
	}
	for e, lbl := range part {
		if lbl < 0 || lbl >= k {
			return fmt.Errorf("split: edge (%d,%d): part %d outside [0,%d)", edges[e].U, edges[e].V, lbl, k)
		}
		deg[edges[e].U]++
		deg[edges[e].V]++
		byPart[lbl][edges[e].U]++
		byPart[lbl][edges[e].V]++
	}
	for v := 0; v < n; v++ {
		want := float64(deg[v]) / float64(k)
		slack := eps*float64(deg[v]) + a
		for p := 0; p < k; p++ {
			got := float64(byPart[p][v])
			if got < want-slack || got > want+slack {
				return fmt.Errorf("split: vertex %d: part %d has %d edges, want %.2f ± %.2f",
					v, p, byPart[p][v], want, slack)
			}
		}
	}
	return nil
}
