package loophole

import (
	"fmt"

	"deltacoloring/internal/acd"
	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
)

// Complete extends the partial coloring to the loophole's vertices using
// colors [0, delta), by brute force over the constant-size vertex set
// (the paper's "bruteforce in O(1) rounds", Algorithm 3 line 8 — a loophole
// has diameter <= 3, so gathering it is O(1) rounds; the caller charges
// them). It fails only if no extension exists, which the deg-list
// colorability of loopholes (Lemma 7) rules out when the loophole is
// colored last among its neighbors.
func Complete(g *graph.Graph, c *coloring.Partial, l *Loophole, delta int) error {
	order := l.Cycle
	if len(order) == 0 {
		order = l.Verts
	}
	var uncolored []int
	for _, v := range order {
		if !c.Colored(v) {
			uncolored = append(uncolored, v)
		}
	}
	if len(uncolored) == 0 {
		return nil
	}
	if !backtrack(g, c, uncolored, 0, delta) {
		return fmt.Errorf("loophole: no %d-coloring extension for %v", delta, l.Verts)
	}
	return nil
}

func backtrack(g *graph.Graph, c *coloring.Partial, order []int, i, delta int) bool {
	if i == len(order) {
		return true
	}
	v := order[i]
	avail := coloring.Available(g, c, v, delta)
	for _, col := range avail.Colors() {
		c.Colors[v] = col
		if backtrack(g, c, order, i+1, delta) {
			return true
		}
		c.Colors[v] = coloring.None
	}
	return false
}

// ExistsListColoring reports whether the graph admits a proper coloring
// where each vertex uses a color from its list (exhaustive backtracking;
// test-sized graphs only). It is the checking primitive behind the Lemma 7
// tests: non-clique even cycles are deg-list colorable, odd cycles and
// cliques are not.
func ExistsListColoring(g *graph.Graph, lists []coloring.Palette) bool {
	c := coloring.NewPartial(g.N())
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == g.N() {
			return true
		}
		for _, col := range lists[v].Colors() {
			ok := true
			for _, w := range g.Neighbors(v) {
				if c.Colors[w] == col {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			c.Colors[v] = col
			if rec(v + 1) {
				return true
			}
			c.Colors[v] = coloring.None
		}
		return false
	}
	return rec(0)
}

// VerifyHard checks the Lemma 9 structure for every clique the
// classification declares hard: it is a true clique, every member has
// degree exactly Δ, and no outsider has two neighbors in it. The Δ-coloring
// pipeline calls this as a safety net, since the slack-triad construction
// silently depends on these properties.
func VerifyHard(g *graph.Graph, a *acd.ACD, cl *Classification) error {
	delta := g.MaxDegree()
	for ci, members := range a.Cliques {
		if cl.Easy[ci] {
			if cl.Witness[ci] == nil {
				return fmt.Errorf("loophole: easy clique %d has no witness", ci)
			}
			if err := cl.Witness[ci].Validate(g, delta); err != nil {
				return fmt.Errorf("loophole: clique %d witness: %w", ci, err)
			}
			touches := false
			for _, v := range cl.Witness[ci].Verts {
				if a.CliqueOf[v] == ci {
					touches = true
					break
				}
			}
			if !touches {
				return fmt.Errorf("loophole: clique %d witness %v does not intersect it", ci, cl.Witness[ci].Verts)
			}
			continue
		}
		if !g.IsClique(members) {
			return fmt.Errorf("loophole: hard clique %d is not a clique (Lemma 9.1)", ci)
		}
		for _, v := range members {
			if g.Degree(v) != delta {
				return fmt.Errorf("loophole: vertex %d: degree %d != Δ in hard clique %d (Lemma 9.2)", v, g.Degree(v), ci)
			}
		}
		counts := map[int]int{}
		for _, v := range members {
			for _, w := range g.Neighbors(v) {
				if a.CliqueOf[w] != ci {
					counts[int(w)]++
				}
			}
		}
		for w, cnt := range counts {
			if cnt > 1 {
				return fmt.Errorf("loophole: vertex %d: outsider with %d neighbors in hard clique %d (Lemma 9.3)", w, cnt, ci)
			}
		}
	}
	return nil
}
