package loophole

// Targeted tests for the rarer branches of Classify's case analysis, each
// on a hand-built instance where exactly that pattern is the first to
// apply. The instances use hand-assembled ACDs (Classify consumes only the
// clique structure, so validity of ε is irrelevant here) and are
// cross-checked against the exhaustive detector.

import (
	"testing"

	"deltacoloring/internal/acd"
	"deltacoloring/internal/graph"
)

// k8WithStubs builds K8 where member 0 has two external stubs (8 and 9)
// and members 1..7 have two external leaf stubs each, so every member has
// degree 9 = Δ. The caller wires additional structure among the stubs.
func k8WithStubs(extra func(b *graph.Builder)) (*graph.Graph, *acd.ACD) {
	// Vertices: 0..7 clique, 8..9 partners of 0, 10..12 path/aux vertices,
	// 13..26 leaf stubs (two per member 1..7).
	b := graph.NewBuilder(27)
	for u := 0; u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			b.AddEdge(u, v)
		}
	}
	b.AddEdge(0, 8)
	b.AddEdge(0, 9)
	for i := 1; i < 8; i++ {
		b.AddEdge(i, 13+2*(i-1))
		b.AddEdge(i, 13+2*(i-1)+1)
	}
	extra(b)
	g := b.MustBuild()
	cliqueOf := make([]int, g.N())
	for v := range cliqueOf {
		if v < 8 {
			cliqueOf[v] = 0
		} else {
			cliqueOf[v] = acd.Sparse
		}
	}
	a := &acd.ACD{Eps: 0.5, Delta: g.MaxDegree(), CliqueOf: cliqueOf,
		Cliques: [][]int{{0, 1, 2, 3, 4, 5, 6, 7}}}
	return g, a
}

func requireEasyWithValidWitness(t *testing.T, g *graph.Graph, a *acd.ACD, wantSize int) *Loophole {
	t.Helper()
	cl := Classify(g, a)
	if !cl.Easy[0] {
		t.Fatal("clique misclassified hard")
	}
	w := cl.Witness[0]
	if w == nil {
		t.Fatal("no witness")
	}
	if err := w.Validate(g, g.MaxDegree()); err != nil {
		t.Fatal(err)
	}
	if len(w.Verts) != wantSize {
		t.Fatalf("witness %v has %d vertices, want %d", w.Verts, len(w.Verts), wantSize)
	}
	// The exhaustive detector must agree that a member is in a loophole.
	found := false
	for _, v := range a.Cliques[0] {
		if FindForVertex(g, g.MaxDegree(), v) != nil {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("exhaustive detector disagrees with Classify")
	}
	return w
}

// Case (iv-b): two partners of one member share an outside neighbor —
// 4-cycle 0-8-x-9.
func TestClassifyCaseIVbFourCycle(t *testing.T) {
	g, a := k8WithStubs(func(b *graph.Builder) {
		b.AddEdge(8, 10)
		b.AddEdge(9, 10) // 10 is the common outside neighbor
		// Pad degrees of aux vertices so Δ stays 9 (not needed: Δ already 9).
	})
	w := requireEasyWithValidWitness(t, g, a, 4)
	has := map[int]bool{}
	for _, v := range w.Verts {
		has[v] = true
	}
	if !has[0] || !has[8] || !has[9] || !has[10] {
		t.Fatalf("witness %v should be the 0-8-10-9 cycle", w.Verts)
	}
}

// Case (iv-b4): two partners of one member joined by an outside path of
// length 4 — 6-cycle 0-8-10-11-12-9.
func TestClassifyCaseIVb4SixCycle(t *testing.T) {
	g, a := k8WithStubs(func(b *graph.Builder) {
		b.AddEdge(8, 10)
		b.AddEdge(10, 11)
		b.AddEdge(11, 12)
		b.AddEdge(12, 9)
	})
	w := requireEasyWithValidWitness(t, g, a, 6)
	has := map[int]bool{}
	for _, v := range w.Verts {
		has[v] = true
	}
	for _, v := range []int{0, 8, 9, 10, 11, 12} {
		if !has[v] {
			t.Fatalf("witness %v should be the 6-cycle through the path", w.Verts)
		}
	}
}

// Case (iv-a3): partners of two distinct members joined by an outside
// length-3 path — 6-cycle 1-13-10-11-8-0 (partner 13 of member 1, partner
// 8 of member 0).
func TestClassifyCaseIVa3SixCycle(t *testing.T) {
	g, a := k8WithStubs(func(b *graph.Builder) {
		b.AddEdge(13, 10)
		b.AddEdge(10, 11)
		b.AddEdge(11, 8)
	})
	requireEasyWithValidWitness(t, g, a, 6)
}

// Case (ii): two non-adjacent members of an AC — witness 4-cycle through
// two common member neighbors. Built as K8 minus the edge {0,1} with the
// degrees patched by external stubs.
func TestClassifyCaseIINonAdjacentMembers(t *testing.T) {
	b := graph.NewBuilder(12)
	for u := 0; u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			if u == 0 && v == 1 {
				continue
			}
			b.AddEdge(u, v)
		}
	}
	// Patch degrees: members 0 and 1 get three stubs, the rest get two, so
	// every member has degree 9.
	b.AddEdge(0, 8)
	b.AddEdge(0, 9)
	b.AddEdge(0, 10)
	b.AddEdge(1, 8)
	b.AddEdge(1, 9)
	b.AddEdge(1, 11)
	for i := 2; i < 8; i++ {
		b.AddEdge(i, 8)
		b.AddEdge(i, 9)
	}
	g := b.MustBuild()
	// Δ: members have 9; stubs 8 and 9 have 8 each.
	cliqueOf := []int{0, 0, 0, 0, 0, 0, 0, 0, acd.Sparse, acd.Sparse, acd.Sparse, acd.Sparse}
	a := &acd.ACD{Eps: 0.5, Delta: g.MaxDegree(), CliqueOf: cliqueOf,
		Cliques: [][]int{{0, 1, 2, 3, 4, 5, 6, 7}}}
	cl := Classify(g, a)
	if !cl.Easy[0] {
		t.Fatal("non-clique AC misclassified hard")
	}
	if err := cl.Witness[0].Validate(g, g.MaxDegree()); err != nil {
		t.Fatal(err)
	}
}

func TestNewExternalSlackValidates(t *testing.T) {
	g := graph.Complete(4)
	l := NewExternalSlack(0)
	// Vertex 0 has full degree, but external-slack singletons are
	// contextually valid.
	if err := l.Validate(g, 3); err != nil {
		t.Fatal(err)
	}
	if newSingleton(0).Validate(g, 3) == nil {
		t.Fatal("plain full-degree singleton should be invalid")
	}
}

func TestFindAll(t *testing.T) {
	g := graph.Star(5) // every vertex degree-deficient or center full
	ws := FindAll(g, 4)
	if len(ws) != 5 {
		t.Fatalf("FindAll returned %d entries", len(ws))
	}
	for v := 1; v < 5; v++ {
		if ws[v] == nil {
			t.Fatalf("leaf %d should be a singleton loophole", v)
		}
	}
	// The center has full degree and no cycles exist: no loophole.
	if ws[0] != nil {
		t.Fatalf("center misreported: %v", ws[0].Verts)
	}
}
