// Package loophole implements the paper's loophole machinery (Definition 6,
// Lemma 7, Definition 8): detection of constant-size slack sources, the
// hard/easy classification of almost cliques, and brute-force completion of
// partial colorings on loopholes.
//
// A loophole is (1) a vertex of degree < Δ, or (2) an even-length cycle on
// at most 6 vertices whose vertex set does not induce a clique. An almost
// clique is *hard* when no loophole of at most 6 vertices intersects it
// (Definition 8), which forces the strong structure of Lemma 9: the AC is a
// true clique, every member has degree exactly Δ, and no outsider has two
// neighbors in it.
//
// Two detectors are provided. FindForVertex enumerates cycles through one
// vertex and is exact but O(Δ^4)-ish per vertex — fine for tests and small
// graphs. Classify exploits the ACD structure to classify every clique and
// produce witness loopholes in near-linear time; its case analysis (see
// classify.go) is exactly the contrapositive of the Lemma 9/Lemma 10 proofs.
package loophole

import (
	"fmt"
	"sort"

	"deltacoloring/internal/graph"
)

// Loophole is a constant-size slack source.
type Loophole struct {
	// Verts lists the loophole's vertices, sorted. A single vertex means a
	// degree-deficient loophole; 4 or 6 vertices mean an even non-clique
	// cycle given in cycle order by Cycle.
	Verts []int
	// Cycle lists the vertices in cycle order (nil for singletons).
	Cycle []int
	// ExternalSlack marks a singleton whose slack comes from an uncolored
	// neighbor outside the current instance rather than a degree deficit —
	// the extended loophole notion of the randomized post-shattering phase
	// (Section 4, Step 6).
	ExternalSlack bool
}

func newSingleton(v int) *Loophole {
	return &Loophole{Verts: []int{v}}
}

// NewExternalSlack returns a singleton loophole backed by out-of-instance
// slack. Its validity is contextual (the caller guarantees an uncolored
// neighbor outside the instance), so Validate only checks the shape.
func NewExternalSlack(v int) *Loophole {
	return &Loophole{Verts: []int{v}, ExternalSlack: true}
}

func newCycle(cycle []int) *Loophole {
	vs := append([]int(nil), cycle...)
	sort.Ints(vs)
	return &Loophole{Verts: vs, Cycle: append([]int(nil), cycle...)}
}

// Validate checks that l is a genuine loophole of g with respect to maximum
// degree delta.
func (l *Loophole) Validate(g *graph.Graph, delta int) error {
	switch len(l.Verts) {
	case 1:
		if !l.ExternalSlack && g.Degree(l.Verts[0]) >= delta {
			return fmt.Errorf("loophole: vertex %d: full degree %d", l.Verts[0], delta)
		}
		return nil
	case 4, 6:
		if len(l.Cycle) != len(l.Verts) {
			return fmt.Errorf("loophole: cycle order missing")
		}
		seen := map[int]bool{}
		for i, v := range l.Cycle {
			if seen[v] {
				return fmt.Errorf("loophole: vertex %d: repeated in cycle", v)
			}
			seen[v] = true
			w := l.Cycle[(i+1)%len(l.Cycle)]
			if !g.HasEdge(v, w) {
				return fmt.Errorf("loophole: edge (%d,%d): missing cycle edge", v, w)
			}
		}
		if g.IsClique(l.Verts) {
			return fmt.Errorf("loophole: cycle %v induces a clique", l.Verts)
		}
		return nil
	default:
		return fmt.Errorf("loophole: unsupported size %d", len(l.Verts))
	}
}

// FindForVertex returns some loophole containing v, or nil. It is exact:
// it checks degree deficiency, then enumerates 4-cycles and 6-cycles
// through v. Intended for tests and modest graphs (cost up to ~Δ^4 per
// call).
func FindForVertex(g *graph.Graph, delta, v int) *Loophole {
	if g.Degree(v) < delta {
		return newSingleton(v)
	}
	if c := fourCycleThrough(g, v); c != nil {
		return c
	}
	return sixCycleThrough(g, v)
}

// fourCycleThrough searches for a non-clique 4-cycle v-a-x-b.
func fourCycleThrough(g *graph.Graph, v int) *Loophole {
	nv := g.Neighbors(v)
	for i := 0; i < len(nv); i++ {
		a := int(nv[i])
		for j := i + 1; j < len(nv); j++ {
			b := int(nv[j])
			for _, nx := range g.Neighbors(a) {
				x := int(nx)
				if x == v || x == b || !g.HasEdge(x, b) {
					continue
				}
				cand := []int{v, a, x, b}
				if !g.IsClique(cand) {
					return newCycle(cand)
				}
			}
		}
	}
	return nil
}

// sixCycleThrough searches for a non-clique 6-cycle v-a-b-c-d-e by meeting
// length-3 paths in the middle.
func sixCycleThrough(g *graph.Graph, v int) *Loophole {
	nv := g.Neighbors(v)
	for i := 0; i < len(nv); i++ {
		a := int(nv[i])
		for j := 0; j < len(nv); j++ {
			e := int(nv[j])
			if e == a {
				continue
			}
			// Path a-b-c-d-e with all vertices distinct from {v,a,e}.
			for _, nb := range g.Neighbors(a) {
				b := int(nb)
				if b == v || b == a || b == e {
					continue
				}
				for _, nc := range g.Neighbors(b) {
					c := int(nc)
					if c == v || c == a || c == b || c == e {
						continue
					}
					for _, nd := range g.Neighbors(c) {
						d := int(nd)
						if d == v || d == a || d == b || d == c || d == e {
							continue
						}
						if !g.HasEdge(d, e) {
							continue
						}
						cand := []int{v, a, b, c, d, e}
						if !g.IsClique(cand) {
							return newCycle(cand)
						}
					}
				}
			}
		}
	}
	return nil
}

// FindAll returns a witness loophole per vertex (nil where none exists),
// using the exact per-vertex search. Exponentially cheaper detectors for
// the pipeline live in classify.go.
func FindAll(g *graph.Graph, delta int) []*Loophole {
	out := make([]*Loophole, g.N())
	for v := 0; v < g.N(); v++ {
		out[v] = FindForVertex(g, delta, v)
	}
	return out
}
