package loophole

import (
	"deltacoloring/internal/acd"
	"deltacoloring/internal/graph"
)

// Classification is the hard/easy split of an ACD's cliques (Definition 8)
// together with witness loopholes.
type Classification struct {
	// Easy[c] reports whether clique c intersects a loophole of <= 6
	// vertices.
	Easy []bool
	// Witness[c] is a loophole intersecting clique c (nil for hard
	// cliques).
	Witness []*Loophole
}

// Classify determines, for every almost clique of the decomposition,
// whether it is hard or easy, producing a witness loophole for each easy
// clique. It runs the structured case analysis below instead of brute-force
// cycle enumeration; the cases are exactly the contrapositives of the
// Lemma 9 / Lemma 10 proofs and are exhaustive for cycles of <= 6 vertices
// intersecting an almost clique of a valid ACD:
//
//	(i)    a member with degree < Δ                    → singleton loophole
//	(ii)   two non-adjacent members                    → 4-cycle inside C
//	(iii)  an outsider with two neighbors in C         → 4-cycle via the outsider
//	(iv-a) members u1 != u2 whose external partners are adjacent
//	                                                   → 4-cycle u1-a-b-u2
//	(iv-a3) partners of distinct members joined by an outside path of
//	        length 3                                   → 6-cycle
//	(iv-b) two partners of one member with a common outside neighbor
//	                                                   → 4-cycle (checked non-clique)
//	(iv-b4) two partners of one member joined by an outside path of
//	        length 4                                   → 6-cycle (checked non-clique)
//
// Any cycle of <= 6 vertices intersecting C either touches 3 or more
// members (then consecutive outsiders yield case (iii)), exactly 2 members
// (cases (iv-a)/(iv-a3), using that members are adjacent once (ii) fails),
// or exactly 1 member (cases (iv-b)/(iv-b4)).
func Classify(g *graph.Graph, a *acd.ACD) *Classification {
	delta := g.MaxDegree()
	cl := &Classification{
		Easy:    make([]bool, len(a.Cliques)),
		Witness: make([]*Loophole, len(a.Cliques)),
	}
	for ci := range a.Cliques {
		cl.classifyClique(g, a, delta, ci)
	}
	return cl
}

func (cl *Classification) mark(ci int, l *Loophole) {
	cl.Easy[ci] = true
	if cl.Witness[ci] == nil {
		cl.Witness[ci] = l
	}
}

func (cl *Classification) classifyClique(g *graph.Graph, a *acd.ACD, delta, ci int) {
	members := a.Cliques[ci]
	inC := func(v int) bool { return a.CliqueOf[v] == ci }

	// (i) degree deficiency.
	for _, v := range members {
		if g.Degree(v) < delta {
			cl.mark(ci, newSingleton(v))
			return
		}
	}
	// (ii) non-adjacent member pair: witness 4-cycle u1-u3-u2-u4 through
	// common member neighbors (Lemma 9, property 1).
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			u1, u2 := members[i], members[j]
			if g.HasEdge(u1, u2) {
				continue
			}
			if c := witnessNonAdjacent(g, members, u1, u2); c != nil {
				cl.mark(ci, c)
				return
			}
			// No common-member 4-cycle (tiny AC): fall back to exact search.
			if l := FindForVertex(g, delta, u1); l != nil {
				cl.mark(ci, l)
				return
			}
		}
	}
	// (iii) outsider with two neighbors in C: witness u-w-v-c1 with c1 in C
	// not adjacent to w (Lemma 9, property 3).
	type ext struct{ owner, partner int }
	var partners []ext
	nbrsInC := map[int][]int{} // outsider -> members adjacent to it
	for _, v := range members {
		for _, w := range g.Neighbors(v) {
			if !inC(w) {
				nbrsInC[w] = append(nbrsInC[w], v)
				partners = append(partners, ext{owner: v, partner: w})
			}
		}
	}
	for w, owners := range nbrsInC {
		if len(owners) < 2 {
			continue
		}
		u, v := owners[0], owners[1]
		for _, c1 := range members {
			if c1 != u && c1 != v && !g.HasEdge(c1, w) {
				cl.mark(ci, newCycle([]int{u, w, v, c1}))
				return
			}
		}
	}
	// (iv-a) adjacent partners of distinct members: 4-cycle u1-a-b-u2.
	partnerOwners := map[int]int{} // partner vertex -> one owner
	for _, p := range partners {
		partnerOwners[p.partner] = p.owner
	}
	for _, p := range partners {
		for _, b := range g.Neighbors(p.partner) {
			if inC(b) || b == p.partner {
				continue
			}
			owner2, ok := partnerOwners[b]
			if !ok || owner2 == p.owner {
				continue
			}
			cl.mark(ci, newCycle([]int{p.owner, p.partner, b, owner2}))
			return
		}
	}
	// (iv-a3) partners of distinct members joined by an outside length-3
	// path: 6-cycle u1-a-x-y-b-u2. Tag every outside vertex adjacent to a
	// partner with up to three (partner, owner) sources, then scan outside
	// edges between tagged vertices.
	type src struct{ partner, owner int }
	reach := map[int][]src{}
	for _, p := range partners {
		for _, x := range g.Neighbors(p.partner) {
			if inC(x) {
				continue
			}
			if len(reach[x]) < 3 {
				reach[x] = append(reach[x], src{partner: p.partner, owner: p.owner})
			}
		}
	}
	for x, sx := range reach {
		for _, y := range g.Neighbors(x) {
			if inC(y) || y == x {
				continue
			}
			sy, ok := reach[y]
			if !ok {
				continue
			}
			for _, s1 := range sx {
				for _, s2 := range sy {
					if s1.owner == s2.owner {
						continue
					}
					verts := []int{s1.owner, s1.partner, x, y, s2.partner, s2.owner}
					if distinct(verts) {
						cl.mark(ci, newCycle(verts))
						return
					}
				}
			}
		}
	}
	// (iv-b) two partners of one member with a common outside neighbor:
	// 4-cycle v-a-x-b (explicit non-clique check; K4s are skipped).
	byOwner := map[int][]int{}
	for _, p := range partners {
		byOwner[p.owner] = append(byOwner[p.owner], p.partner)
	}
	for owner, ps := range byOwner {
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				a1, b1 := ps[i], ps[j]
				for _, x := range g.Neighbors(a1) {
					if inC(x) || x == owner || x == b1 || !g.HasEdge(x, b1) {
						continue
					}
					cand := []int{owner, a1, x, b1}
					if !g.IsClique(cand) {
						cl.mark(ci, newCycle(cand))
						return
					}
				}
			}
		}
	}
	// (iv-b4) two partners of one member joined by an outside length-4
	// path: 6-cycle v-a-b-c-d-e (explicit non-clique check).
	for owner, ps := range byOwner {
		for i := 0; i < len(ps); i++ {
			for j := 0; j < len(ps); j++ {
				if i == j {
					continue
				}
				if c := sixViaOnePartnerPair(g, inC, owner, ps[i], ps[j]); c != nil {
					cl.mark(ci, c)
					return
				}
			}
		}
	}
}

// witnessNonAdjacent builds the Lemma 9 (property 1) 4-cycle for two
// non-adjacent members: common member neighbors u3, u4 that are adjacent.
func witnessNonAdjacent(g *graph.Graph, members []int, u1, u2 int) *Loophole {
	var common []int
	for _, u3 := range members {
		if u3 != u1 && u3 != u2 && g.HasEdge(u3, u1) && g.HasEdge(u3, u2) {
			common = append(common, u3)
		}
	}
	for i := 0; i < len(common); i++ {
		for j := i + 1; j < len(common); j++ {
			// Cycle u1-u3-u2-u4; non-clique since u1 and u2 are not
			// adjacent. The cross pair u3-u4 need not be adjacent.
			return newCycle([]int{u1, common[i], u2, common[j]})
		}
	}
	return nil
}

// sixViaOnePartnerPair searches a path a-b-c-d-e outside the clique between
// two partners a, e of the same member.
func sixViaOnePartnerPair(g *graph.Graph, inC func(int) bool, owner, a, e int) *Loophole {
	if a == e {
		return nil
	}
	for _, b := range g.Neighbors(a) {
		if inC(b) || b == owner || b == a || b == e {
			continue
		}
		for _, c := range g.Neighbors(b) {
			if inC(c) || c == owner || c == a || c == b || c == e {
				continue
			}
			for _, d := range g.Neighbors(c) {
				if inC(d) || d == owner || d == a || d == b || d == c || d == e {
					continue
				}
				if !g.HasEdge(d, e) {
					continue
				}
				cand := []int{owner, a, b, c, d, e}
				if !g.IsClique(cand) {
					return newCycle(cand)
				}
			}
		}
	}
	return nil
}

func distinct(vs []int) bool {
	for i := range vs {
		for j := i + 1; j < len(vs); j++ {
			if vs[i] == vs[j] {
				return false
			}
		}
	}
	return true
}
