package loophole

import (
	"deltacoloring/internal/acd"
	"deltacoloring/internal/arena"
	"deltacoloring/internal/graph"
)

// Classification is the hard/easy split of an ACD's cliques (Definition 8)
// together with witness loopholes.
type Classification struct {
	// Easy[c] reports whether clique c intersects a loophole of <= 6
	// vertices.
	Easy []bool
	// Witness[c] is a loophole intersecting clique c (nil for hard
	// cliques).
	Witness []*Loophole
}

// Classify determines, for every almost clique of the decomposition,
// whether it is hard or easy, producing a witness loophole for each easy
// clique. It runs the structured case analysis below instead of brute-force
// cycle enumeration; the cases are exactly the contrapositives of the
// Lemma 9 / Lemma 10 proofs and are exhaustive for cycles of <= 6 vertices
// intersecting an almost clique of a valid ACD:
//
//	(i)    a member with degree < Δ                    → singleton loophole
//	(ii)   two non-adjacent members                    → 4-cycle inside C
//	(iii)  an outsider with two neighbors in C         → 4-cycle via the outsider
//	(iv-a) members u1 != u2 whose external partners are adjacent
//	                                                   → 4-cycle u1-a-b-u2
//	(iv-a3) partners of distinct members joined by an outside path of
//	        length 3                                   → 6-cycle
//	(iv-b) two partners of one member with a common outside neighbor
//	                                                   → 4-cycle (checked non-clique)
//	(iv-b4) two partners of one member joined by an outside path of
//	        length 4                                   → 6-cycle (checked non-clique)
//
// Any cycle of <= 6 vertices intersecting C either touches 3 or more
// members (then consecutive outsiders yield case (iii)), exactly 2 members
// (cases (iv-a)/(iv-a3), using that members are adjacent once (ii) fails),
// or exactly 1 member (cases (iv-b)/(iv-b4)).
func Classify(g *graph.Graph, a *acd.ACD) *Classification {
	cl := &Classification{
		Easy:    make([]bool, len(a.Cliques)),
		Witness: make([]*Loophole, len(a.Cliques)),
	}
	ar := arena.Get()
	defer arena.Put(ar)
	k := newClassifier(cl, g, a, ar)
	for ci := range a.Cliques {
		k.classifyClique(ci)
	}
	return cl
}

func (cl *Classification) mark(ci int, l *Loophole) {
	cl.Easy[ci] = true
	if cl.Witness[ci] == nil {
		cl.Witness[ci] = l
	}
}

// ext records one clique-member/outside-neighbor incidence. The collection
// loop walks members in order, so partners of the same owner are contiguous.
type ext struct{ owner, partner int }

// classifier carries parent-graph-sized scratch across the per-clique case
// analysis so classifying a clique allocates nothing beyond the witness it
// returns. Arrays are reset sparsely via the touched/reached lists; between
// cliques own1/own2/partnerOwner are all -1 and reachCnt is all 0
// (reachPart/reachOwn need no reset: entries are dead above reachCnt).
type classifier struct {
	cl    *Classification
	g     *graph.Graph
	a     *acd.ACD
	delta int

	own1, own2   []int32 // first two members adjacent to an outsider, or -1
	partnerOwner []int32 // last member owning this partner vertex, or -1
	reachCnt     []int32 // number of (partner, owner) tags, capped at 3
	reachPart    []int32 // 3 tag slots per vertex
	reachOwn     []int32
	nbrMark      []bool  // stamped N(u1) during the member-pair scan
	touched      []int32 // outsiders with own1/own2/partnerOwner set
	reached      []int32 // outsiders with reachCnt > 0
	partners     []ext
}

func newClassifier(cl *Classification, g *graph.Graph, a *acd.ACD, ar *arena.Arena) *classifier {
	n := g.N()
	return &classifier{
		cl: cl, g: g, a: a, delta: g.MaxDegree(),
		own1:         ar.Int32sFill(n, -1),
		own2:         ar.Int32sFill(n, -1),
		partnerOwner: ar.Int32sFill(n, -1),
		reachCnt:     ar.Int32s(n),
		reachPart:    ar.Int32s(3 * n),
		reachOwn:     ar.Int32s(3 * n),
		nbrMark:      ar.Bools(n),
	}
}

func (k *classifier) reset() {
	for _, v := range k.touched {
		k.own1[v], k.own2[v], k.partnerOwner[v] = -1, -1, -1
	}
	k.touched = k.touched[:0]
	for _, v := range k.reached {
		k.reachCnt[v] = 0
	}
	k.reached = k.reached[:0]
}

func (k *classifier) classifyClique(ci int) {
	g, a, delta, cl := k.g, k.a, k.delta, k.cl
	members := a.Cliques[ci]
	cliqueOf := a.CliqueOf
	defer k.reset()

	// (i) degree deficiency.
	for _, v := range members {
		if g.Degree(v) < delta {
			cl.mark(ci, newSingleton(v))
			return
		}
	}
	// (ii) non-adjacent member pair: witness 4-cycle u1-u3-u2-u4 through
	// common member neighbors (Lemma 9, property 1). Adjacency is tested by
	// stamping N(u1) once per row instead of a binary-search HasEdge per
	// member pair.
	for i := 0; i < len(members); i++ {
		u1 := members[i]
		nbrs := g.Neighbors(u1)
		for _, w := range nbrs {
			k.nbrMark[w] = true
		}
		for j := i + 1; j < len(members); j++ {
			u2 := members[j]
			if k.nbrMark[u2] {
				continue
			}
			for _, w := range nbrs {
				k.nbrMark[w] = false
			}
			if c := witnessNonAdjacent(g, members, u1, u2); c != nil {
				cl.mark(ci, c)
				return
			}
			// No common-member 4-cycle (tiny AC): fall back to exact search.
			if l := FindForVertex(g, delta, u1); l != nil {
				cl.mark(ci, l)
				return
			}
			for _, w := range nbrs {
				k.nbrMark[w] = true
			}
		}
		for _, w := range nbrs {
			k.nbrMark[w] = false
		}
	}
	// Collect the member/outsider incidences once; own1/own2 record the
	// first two members adjacent to each outsider and partnerOwner the last
	// (matching the overwrite semantics of the map-based version).
	k.partners = k.partners[:0]
	for _, v := range members {
		for _, nw := range g.Neighbors(v) {
			w := int(nw)
			if cliqueOf[w] == ci {
				continue
			}
			if k.own1[w] < 0 {
				k.own1[w] = int32(v)
				k.touched = append(k.touched, nw)
			} else if k.own2[w] < 0 {
				k.own2[w] = int32(v)
			}
			k.partnerOwner[w] = int32(v)
			k.partners = append(k.partners, ext{owner: v, partner: w})
		}
	}
	// (iii) outsider with two neighbors in C: witness u-w-v-c1 with c1 in C
	// not adjacent to w (Lemma 9, property 3).
	for _, wq := range k.touched {
		w := int(wq)
		if k.own2[w] < 0 {
			continue
		}
		u, v := int(k.own1[w]), int(k.own2[w])
		for _, c1 := range members {
			if c1 != u && c1 != v && !g.HasEdge(c1, w) {
				cl.mark(ci, newCycle([]int{u, w, v, c1}))
				return
			}
		}
	}
	// (iv-a) adjacent partners of distinct members: 4-cycle u1-a-b-u2.
	for _, p := range k.partners {
		for _, nb := range g.Neighbors(p.partner) {
			b := int(nb)
			owner2 := k.partnerOwner[b]
			if owner2 < 0 || int(owner2) == p.owner || cliqueOf[b] == ci {
				continue
			}
			cl.mark(ci, newCycle([]int{p.owner, p.partner, b, int(owner2)}))
			return
		}
	}
	// (iv-a3) partners of distinct members joined by an outside length-3
	// path: 6-cycle u1-a-x-y-b-u2. Tag every outside vertex adjacent to a
	// partner with up to three (partner, owner) sources, then scan outside
	// edges between tagged vertices.
	for _, p := range k.partners {
		for _, nx := range g.Neighbors(p.partner) {
			x := int(nx)
			if cliqueOf[x] == ci {
				continue
			}
			cnt := k.reachCnt[x]
			if cnt >= 3 {
				continue
			}
			if cnt == 0 {
				k.reached = append(k.reached, nx)
			}
			k.reachPart[3*x+int(cnt)] = int32(p.partner)
			k.reachOwn[3*x+int(cnt)] = int32(p.owner)
			k.reachCnt[x] = cnt + 1
		}
	}
	// Only tagged endpoints can close a 6-cycle, so the scan filters each
	// neighbor by its tag count first: reachCnt is zero for every member and
	// for untouched outsiders, which subsumes the old inC(y) test. Both
	// endpoints of a closing edge are tagged, so restricting to y > x visits
	// each candidate edge once instead of twice.
	for _, xq := range k.reached {
		x := int(xq)
		nx := int(k.reachCnt[x])
		for _, nyq := range g.Neighbors(x) {
			y := int(nyq)
			if y <= x {
				continue
			}
			ny := int(k.reachCnt[y])
			if ny == 0 {
				continue
			}
			for i := 0; i < nx; i++ {
				o1, p1 := int(k.reachOwn[3*x+i]), int(k.reachPart[3*x+i])
				for j := 0; j < ny; j++ {
					o2, p2 := int(k.reachOwn[3*y+j]), int(k.reachPart[3*y+j])
					if o1 == o2 {
						continue
					}
					verts := [6]int{o1, p1, x, y, p2, o2}
					if distinct6(verts) {
						cl.mark(ci, newCycle(verts[:]))
						return
					}
				}
			}
		}
	}
	// (iv-b) two partners of one member with a common outside neighbor:
	// 4-cycle v-a-x-b (explicit non-clique check; K4s are skipped). Partners
	// of one owner are a contiguous run of k.partners.
	for lo := 0; lo < len(k.partners); {
		owner := k.partners[lo].owner
		hi := lo
		for hi < len(k.partners) && k.partners[hi].owner == owner {
			hi++
		}
		ps := k.partners[lo:hi]
		lo = hi
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				a1, b1 := ps[i].partner, ps[j].partner
				for _, nx := range g.Neighbors(a1) {
					x := int(nx)
					if cliqueOf[x] == ci || x == owner || x == b1 || !g.HasEdge(x, b1) {
						continue
					}
					cand := []int{owner, a1, x, b1}
					if !g.IsClique(cand) {
						cl.mark(ci, newCycle(cand))
						return
					}
				}
			}
		}
	}
	// (iv-b4) two partners of one member joined by an outside length-4
	// path: 6-cycle v-a-b-c-d-e (explicit non-clique check).
	for lo := 0; lo < len(k.partners); {
		owner := k.partners[lo].owner
		hi := lo
		for hi < len(k.partners) && k.partners[hi].owner == owner {
			hi++
		}
		ps := k.partners[lo:hi]
		lo = hi
		for i := 0; i < len(ps); i++ {
			for j := 0; j < len(ps); j++ {
				if i == j {
					continue
				}
				if c := sixViaOnePartnerPair(g, cliqueOf, ci, owner, ps[i].partner, ps[j].partner); c != nil {
					cl.mark(ci, c)
					return
				}
			}
		}
	}
}

// witnessNonAdjacent builds the Lemma 9 (property 1) 4-cycle for two
// non-adjacent members: common member neighbors u3, u4 that are adjacent.
func witnessNonAdjacent(g *graph.Graph, members []int, u1, u2 int) *Loophole {
	first := -1
	for _, u3 := range members {
		if u3 != u1 && u3 != u2 && g.HasEdge(u3, u1) && g.HasEdge(u3, u2) {
			if first < 0 {
				first = u3
				continue
			}
			// Cycle u1-u3-u2-u4; non-clique since u1 and u2 are not
			// adjacent. The cross pair u3-u4 need not be adjacent.
			return newCycle([]int{u1, first, u2, u3})
		}
	}
	return nil
}

// sixViaOnePartnerPair searches a path a-b-c-d-e outside the clique between
// two partners a, e of the same member. Clique membership is tested with a
// direct CliqueOf compare; the closure this replaces was a measurable share
// of the hard-clique classification profile.
func sixViaOnePartnerPair(g *graph.Graph, cliqueOf []int, ci, owner, a, e int) *Loophole {
	if a == e {
		return nil
	}
	for _, nb := range g.Neighbors(a) {
		b := int(nb)
		if cliqueOf[b] == ci || b == owner || b == a || b == e {
			continue
		}
		for _, nc := range g.Neighbors(b) {
			c := int(nc)
			if cliqueOf[c] == ci || c == owner || c == a || c == b || c == e {
				continue
			}
			for _, nd := range g.Neighbors(c) {
				d := int(nd)
				if cliqueOf[d] == ci || d == owner || d == a || d == b || d == c || d == e {
					continue
				}
				if !g.HasEdge(d, e) {
					continue
				}
				cand := []int{owner, a, b, c, d, e}
				if !g.IsClique(cand) {
					return newCycle(cand)
				}
			}
		}
	}
	return nil
}

func distinct6(vs [6]int) bool {
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if vs[i] == vs[j] {
				return false
			}
		}
	}
	return true
}
