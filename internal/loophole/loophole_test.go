package loophole

import (
	"math/rand"
	"testing"

	"deltacoloring/internal/acd"
	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func TestFindForVertexDegreeDeficient(t *testing.T) {
	g := graph.Star(5) // leaves have degree 1 < Δ=4
	l := FindForVertex(g, 4, 1)
	if l == nil || len(l.Verts) != 1 || l.Verts[0] != 1 {
		t.Fatalf("expected singleton loophole, got %+v", l)
	}
	if err := l.Validate(g, 4); err != nil {
		t.Fatal(err)
	}
}

func TestFindForVertexFourCycle(t *testing.T) {
	g := graph.Cycle(4) // C4 itself is a non-clique 4-cycle; Δ=2, all deg 2
	l := FindForVertex(g, 2, 0)
	if l == nil || len(l.Verts) != 4 {
		t.Fatalf("expected 4-cycle loophole, got %+v", l)
	}
	if err := l.Validate(g, 2); err != nil {
		t.Fatal(err)
	}
}

func TestFindForVertexSixCycle(t *testing.T) {
	g := graph.Cycle(6)
	l := FindForVertex(g, 2, 3)
	if l == nil {
		t.Fatal("no loophole found on C6")
	}
	// C6 contains no 4-cycle, so the witness must be the 6-cycle.
	if len(l.Verts) != 6 {
		t.Fatalf("expected 6-cycle, got %v", l.Verts)
	}
	if err := l.Validate(g, 2); err != nil {
		t.Fatal(err)
	}
}

func TestFindForVertexNoneOnOddCycle(t *testing.T) {
	g := graph.Cycle(7)
	for v := 0; v < 7; v++ {
		if l := FindForVertex(g, 2, v); l != nil {
			t.Fatalf("odd cycle should have no loophole, got %+v at %d", l, v)
		}
	}
}

func TestFindForVertexNoneOnClique(t *testing.T) {
	g := graph.Complete(5) // K5: every 4-cycle induces a clique, deg = Δ
	for v := 0; v < 5; v++ {
		if l := FindForVertex(g, 4, v); l != nil {
			t.Fatalf("K5 should have no loophole, got %+v", l)
		}
	}
}

func TestValidateRejectsBadLoopholes(t *testing.T) {
	g := graph.Complete(4)
	if err := newSingleton(0).Validate(g, 3); err == nil {
		t.Fatal("full-degree singleton accepted")
	}
	cl := newCycle([]int{0, 1, 2, 3})
	if err := cl.Validate(g, 3); err == nil {
		t.Fatal("clique 4-cycle accepted")
	}
	p := graph.Path(4)
	bad := newCycle([]int{0, 1, 2, 3})
	if err := bad.Validate(p, 2); err == nil {
		t.Fatal("non-cycle accepted")
	}
	if err := (&Loophole{Verts: []int{0, 1}}).Validate(p, 2); err == nil {
		t.Fatal("size-2 loophole accepted")
	}
}

func TestClassifyHardCliqueBipartite(t *testing.T) {
	g, _ := graph.HardCliqueBipartite(16, 16)
	a, err := acd.Compute(local.New(g), 1.0/8)
	if err != nil {
		t.Fatal(err)
	}
	cl := Classify(g, a)
	for ci, easy := range cl.Easy {
		if easy {
			t.Fatalf("clique %d misclassified easy (witness %v)", ci, cl.Witness[ci].Verts)
		}
	}
	if err := VerifyHard(g, a, cl); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyEasyCliqueRing(t *testing.T) {
	g, _ := graph.EasyCliqueRing(6, 16)
	a, err := acd.Compute(local.New(g), 1.0/8)
	if err != nil {
		t.Fatal(err)
	}
	cl := Classify(g, a)
	for ci, easy := range cl.Easy {
		if !easy {
			t.Fatalf("clique %d misclassified hard", ci)
		}
	}
	if err := VerifyHard(g, a, cl); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyHardWithEasyPatch(t *testing.T) {
	g, part := graph.HardWithEasyPatch(16, 16)
	a, err := acd.Compute(local.New(g), 1.0/8)
	if err != nil {
		t.Fatal(err)
	}
	cl := Classify(g, a)
	if err := VerifyHard(g, a, cl); err != nil {
		t.Fatal(err)
	}
	// The rewiring makes exactly the doubled clique pairs easy: ground-truth
	// cliques L0 (0), R0 (m), L_{m-1} (m-1), R1 (m+1).
	const m = 16
	wantEasy := map[int]bool{0: true, m: true, m - 1: true, m + 1: true}
	easyCount := 0
	for ci, easy := range cl.Easy {
		if !easy {
			continue
		}
		easyCount++
		if !wantEasy[part.Member[a.Cliques[ci][0]]] {
			t.Fatalf("unexpected easy clique %d (ground truth %d)", ci, part.Member[a.Cliques[ci][0]])
		}
	}
	if easyCount != 4 {
		t.Fatalf("easy cliques = %d, want 4", easyCount)
	}
}

// Classify must agree with the exhaustive detector on whether each clique
// intersects a loophole.
func TestClassifyMatchesExhaustive(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"hard", func() *graph.Graph { g, _ := graph.HardCliqueBipartite(12, 12); return g }()},
		{"easyRing", func() *graph.Graph { g, _ := graph.EasyCliqueRing(5, 12); return g }()},
		{"patched", func() *graph.Graph { g, _ := graph.HardWithEasyPatch(12, 12); return g }()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a, err := acd.Compute(local.New(c.g), 1.0/6)
			if err != nil {
				t.Fatal(err)
			}
			cl := Classify(c.g, a)
			delta := c.g.MaxDegree()
			for ci, members := range a.Cliques {
				exhaustive := false
				for _, v := range members {
					if FindForVertex(c.g, delta, v) != nil {
						exhaustive = true
						break
					}
				}
				if exhaustive != cl.Easy[ci] {
					t.Fatalf("clique %d: exhaustive=%v classify=%v", ci, exhaustive, cl.Easy[ci])
				}
			}
		})
	}
}

func TestCompleteSingleton(t *testing.T) {
	g := graph.Star(4)
	c := coloring.NewPartial(4)
	c.Colors[0] = 0 // center colored
	l := newSingleton(1)
	if err := Complete(g, c, l, 3); err != nil {
		t.Fatal(err)
	}
	if c.Colors[1] == coloring.None || c.Colors[1] == 0 {
		t.Fatalf("bad completion color %d", c.Colors[1])
	}
}

func TestCompleteFourCycleTightPalette(t *testing.T) {
	// C4 with Δ=2: 2 colors suffice exactly because it is even.
	g := graph.Cycle(4)
	c := coloring.NewPartial(4)
	l := newCycle([]int{0, 1, 2, 3})
	if err := Complete(g, c, l, 2); err != nil {
		t.Fatal(err)
	}
	if err := coloring.VerifyComplete(g, c, 2); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteImpossible(t *testing.T) {
	// Odd cycle with 2 colors has no completion.
	g := graph.Cycle(5)
	c := coloring.NewPartial(5)
	fake := &Loophole{Verts: []int{0, 1, 2, 3, 4}, Cycle: []int{0, 1, 2, 3, 4}}
	if err := Complete(g, c, fake, 2); err == nil {
		t.Fatal("colored an odd cycle with 2 colors")
	}
}

func TestCompleteAlreadyColored(t *testing.T) {
	g := graph.Cycle(4)
	c := coloring.NewPartial(4)
	c.Colors = []int{0, 1, 0, 1}
	if err := Complete(g, c, newCycle([]int{0, 1, 2, 3}), 2); err != nil {
		t.Fatal(err)
	}
}

// Lemma 7: non-clique even cycles are deg-list colorable; odd cycles and
// cliques are not.
func TestLemma7DegListColorability(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	colorsOf := func(k, space int) coloring.Palette {
		var p coloring.Palette
		perm := rng.Perm(space)
		for i := 0; i < k; i++ {
			p.Add(perm[i])
		}
		return p
	}
	// Even cycles: every deg-sized list assignment admits a coloring.
	for _, n := range []int{4, 6} {
		g := graph.Cycle(n)
		for trial := 0; trial < 200; trial++ {
			lists := make([]coloring.Palette, n)
			for v := range lists {
				lists[v] = colorsOf(2, 4)
			}
			if !ExistsListColoring(g, lists) {
				t.Fatalf("C%d with deg-lists had no coloring (violates Lemma 7)", n)
			}
		}
	}
	// Odd cycle counterexample: identical lists of size 2.
	g := graph.Cycle(5)
	lists := make([]coloring.Palette, 5)
	for v := range lists {
		lists[v] = coloring.FullPalette(2)
	}
	if ExistsListColoring(g, lists) {
		t.Fatal("C5 with identical 2-lists should not be colorable")
	}
	// Clique counterexample: identical lists of size deg.
	k := graph.Complete(4)
	klists := make([]coloring.Palette, 4)
	for v := range klists {
		klists[v] = coloring.FullPalette(3)
	}
	if ExistsListColoring(k, klists) {
		t.Fatal("K4 with identical 3-lists should not be colorable")
	}
}

// VerifyHard checks the Lemma 9 structure per branch; exercise each with
// hand-built decompositions.
func TestVerifyHardBranches(t *testing.T) {
	fakeHard := func(n int) *Classification {
		return &Classification{Easy: make([]bool, n), Witness: make([]*Loophole, n)}
	}
	t.Run("notAClique", func(t *testing.T) {
		g := graph.Cycle(4)
		a := &acd.ACD{Eps: 0.5, Delta: 2, CliqueOf: []int{0, 0, 0, 0}, Cliques: [][]int{{0, 1, 2, 3}}}
		if err := VerifyHard(g, a, fakeHard(1)); err == nil {
			t.Fatal("non-clique hard AC accepted")
		}
	})
	t.Run("degreeDeficient", func(t *testing.T) {
		// K4 plus a pendant edge: Δ=4, clique members have degree 3 or 4.
		b := graph.NewBuilder(5)
		for u := 0; u < 4; u++ {
			for v := u + 1; v < 4; v++ {
				b.AddEdge(u, v)
			}
		}
		b.AddEdge(0, 4)
		g := b.MustBuild()
		a := &acd.ACD{Eps: 0.5, Delta: 4, CliqueOf: []int{0, 0, 0, 0, acd.Sparse}, Cliques: [][]int{{0, 1, 2, 3}}}
		if err := VerifyHard(g, a, fakeHard(1)); err == nil {
			t.Fatal("degree-deficient hard AC accepted")
		}
	})
	t.Run("outsiderTwoNeighbors", func(t *testing.T) {
		// K4 where every member also has an external edge, and one outsider
		// catches two of them.
		b := graph.NewBuilder(7)
		for u := 0; u < 4; u++ {
			for v := u + 1; v < 4; v++ {
				b.AddEdge(u, v)
			}
		}
		b.AddEdge(0, 4)
		b.AddEdge(1, 4) // outsider 4 has two neighbors in the clique
		b.AddEdge(2, 5)
		b.AddEdge(3, 6)
		b.AddEdge(5, 6)
		b.AddEdge(4, 5)
		g := b.MustBuild()
		a := &acd.ACD{Eps: 0.5, Delta: 4, CliqueOf: []int{0, 0, 0, 0, acd.Sparse, acd.Sparse, acd.Sparse}, Cliques: [][]int{{0, 1, 2, 3}}}
		if err := VerifyHard(g, a, fakeHard(1)); err == nil {
			t.Fatal("Lemma 9.3 violation accepted")
		}
	})
	t.Run("easyWithoutWitness", func(t *testing.T) {
		g := graph.Complete(4)
		a := &acd.ACD{Eps: 0.5, Delta: 3, CliqueOf: []int{0, 0, 0, 0}, Cliques: [][]int{{0, 1, 2, 3}}}
		cl := &Classification{Easy: []bool{true}, Witness: []*Loophole{nil}}
		if err := VerifyHard(g, a, cl); err == nil {
			t.Fatal("easy clique without witness accepted")
		}
	})
}
