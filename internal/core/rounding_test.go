package core

import (
	"strings"
	"testing"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// TestLemma11RoundingEdge is the table-driven regression for experiment E13:
// the paper's constants are tight, and with *integer* sub-clique sizes the
// Lemma 11 slack check floor(|C|/P) > 1.05·r_H fails for Δ just below the
// ≈85 threshold even though the continuous arithmetic (Δ-1)/28 > 2.1 passes.
// Δ = 63 is the canonical rounding edge: Params.Validate accepts it
// ((63-1)/28 ≈ 2.214 > 2.1) but the runtime instance check in phase1HEG must
// refuse rather than silently weaken the slack. The scaled preset at Δ = 16
// and the default preset at Δ = 96 pin the two accepting sides of the edge.
func TestLemma11RoundingEdge(t *testing.T) {
	cases := []struct {
		name    string
		m       int
		delta   int
		params  Params
		wantErr string // substring of the expected error ("" = must succeed)
		heavy   bool   // skipped under -short
	}{
		{name: "delta63 paper params rejected", m: 63, delta: 63,
			params: DefaultParams(), wantErr: "Lemma 11", heavy: true},
		{name: "delta16 scaled params accepted", m: 16, delta: 16,
			params: TestParams()},
		{name: "delta96 paper params accepted", m: 96, delta: 96,
			params: DefaultParams(), heavy: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("heavy rounding-edge instance; skipped under -short")
			}
			g, _ := graph.HardCliqueBipartite(tc.m, tc.delta)
			// Validate alone must pass on every row: the rounding edge is
			// invisible to the continuous parameter arithmetic.
			if err := tc.params.Validate(tc.delta); err != nil {
				t.Fatalf("Params.Validate rejected Δ=%d: %v", tc.delta, err)
			}
			net := local.New(g)
			defer net.Close()
			res, err := ColorDeterministic(net, tc.params)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Δ=%d: %v", tc.delta, err)
				}
				if got := res.Coloring.CountColored(); got != g.N() {
					t.Fatalf("Δ=%d: %d of %d vertices colored", tc.delta, got, g.N())
				}
				return
			}
			if err == nil {
				t.Fatalf("Δ=%d: rounding edge silently accepted", tc.delta)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Δ=%d: error %q does not mention %q", tc.delta, err, tc.wantErr)
			}
		})
	}
}
