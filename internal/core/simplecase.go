package core

import (
	"fmt"

	"deltacoloring/internal/acd"
	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
	"deltacoloring/internal/loophole"
	"deltacoloring/internal/sinkless"
)

// ColorSimpleDense implements the Section 1.1 sketch for "extremely dense"
// graphs: every almost clique is a hard clique of size exactly Δ, so every
// vertex has exactly one external edge and the cliques form a simple graph
// H. Splitting each clique into two virtual halves and computing a sinkless
// orientation gives every clique two outgoing edges not claimed by the
// clique on the other side — immediately yielding one slack triad per
// clique, without the maximal-matching/HEG machinery of the general
// Algorithm 2.
//
// This is both a didactic implementation of the paper's own intuition and
// the ablation subject of experiment E15: on its (restricted) domain it
// replaces the matching+HEG phases by one sinkless-orientation call.
// ErrNotSimpleDense is returned when the structure does not apply; use
// ColorDeterministic then.
func ColorSimpleDense(net *local.Network, p Params) (*Result, error) {
	g := net.Graph()
	delta := g.MaxDegree()
	if err := p.Validate(delta); err != nil {
		return nil, err
	}
	res := &Result{Coloring: coloring.NewPartial(g.N())}
	res.Stats.N = g.N()
	res.Stats.Delta = delta
	if g.N() == 0 {
		return res, nil
	}
	if delta < 6 {
		return nil, fmt.Errorf("core: simple-dense path needs Δ >= 6 for the two-out orientation, got %d", delta)
	}

	doneACD := net.Phase("simple/acd")
	a, err := acd.Compute(net, p.Eps)
	if err == nil {
		err = net.Checkpoint("simple/acd", &CkptACD{A: a})
	}
	doneACD()
	if err != nil {
		return nil, err
	}
	if !a.IsDense() {
		return nil, fmt.Errorf("%w: %d sparse vertices", ErrNotDense, a.SparseCount())
	}
	res.Stats.NumCliques = len(a.Cliques)
	for _, members := range a.Cliques {
		if len(members) == delta+1 && g.IsClique(members) {
			return nil, ErrBrooks
		}
	}
	doneCl := net.Phase("simple/classify")
	cl := loophole.Classify(g, a)
	err = loophole.VerifyHard(g, a, cl)
	if err == nil {
		err = net.Checkpoint("simple/classify", &CkptClassification{A: a, Cl: cl})
	}
	net.Charge(3)
	doneCl()
	if err != nil {
		return nil, err
	}
	for ci, members := range a.Cliques {
		if cl.Easy[ci] {
			return nil, fmt.Errorf("core: simple-dense path: clique %d is easy; use ColorDeterministic", ci)
		}
		if len(members) != delta {
			return nil, fmt.Errorf("core: simple-dense path: clique %d has size %d != Δ; use ColorDeterministic", ci, len(members))
		}
	}
	res.Stats.HardCliques = len(a.Cliques)

	spec := instanceSpec{hardLike: make([]bool, len(a.Cliques)), witness: make([]*loophole.Loophole, len(a.Cliques))}
	for ci := range a.Cliques {
		spec.hardLike[ci] = true
	}
	hp := newHardPipeline(net, a, spec, p, res.Coloring, &res.Stats)

	// The clique graph H: one node per clique, one edge per external edge
	// of G. Hardness guarantees H is simple (two parallel matching edges
	// would form a 4-cycle loophole) and Δ-regular.
	doneOrient := net.Phase("simple/orientation")
	hEdges := map[graph.Edge]graph.Edge{} // clique pair -> underlying G edge
	b := graph.NewBuilder(len(a.Cliques))
	for _, e := range g.Edges() {
		cu, cv := a.CliqueOf[e.U], a.CliqueOf[e.V]
		if cu == cv {
			continue
		}
		key := graph.Edge{U: cu, V: cv}
		if cu > cv {
			key = graph.Edge{U: cv, V: cu}
		}
		if _, dup := hEdges[key]; dup {
			doneOrient()
			return nil, fmt.Errorf("core: clique pair %v joined twice; not a hard instance", key)
		}
		hEdges[key] = e
		b.AddEdge(key.U, key.V)
	}
	h, err := b.Build()
	if err != nil {
		doneOrient()
		return nil, fmt.Errorf("core: clique graph: %w", err)
	}
	// One round on H is simulated by clique-internal coordination
	// (diameter 1) plus the matching edge: dilation 2. A k-out orientation
	// with k > 2 gives the Section 1.1 sparsification step alternatives to
	// balance incoming edges with (the sketch's "property ii" fix).
	k := delta / 4
	if k < 2 {
		k = 2
	}
	if 3*k > delta {
		k = delta / 3
	}
	vnet := net.Virtual(h, 2)
	orientation, err := sinkless.OrientKOut(vnet, k)
	if err == nil {
		err = net.Checkpoint("simple/orientation", &CkptOrientation{G: h, O: orientation, K: k})
	}
	doneOrient()
	if err != nil {
		return nil, fmt.Errorf("core: %d-out orientation: %w", k, err)
	}

	// Outgoing H-edges become F3 candidates: the tail vertex is the
	// underlying endpoint inside the tail clique.
	doneTriads := net.Phase("simple/triads")
	byClique := make(map[int][]DirEdge)
	for i, he := range orientation.Edges {
		under := hEdges[he]
		tailClique := orientation.Tail[i]
		tail, head := under.U, under.V
		if a.CliqueOf[tail] != tailClique {
			tail, head = under.V, under.U
		}
		byClique[tailClique] = append(byClique[tailClique], DirEdge{Tail: tail, Head: head})
	}
	eligible := make([]bool, len(a.Cliques))
	for ci := range eligible {
		eligible[ci] = true
	}
	f3, typeI, err := hp.discardToTwo(byClique, eligible)
	if err != nil {
		doneTriads()
		return nil, err
	}
	hp.f3, hp.typeI = f3, typeI
	hp.stats.F3Size = len(f3)
	err = hp.phase3Triads()
	doneTriads()
	if err != nil {
		return nil, err
	}
	if err := hp.phase4APairs(); err != nil {
		return nil, err
	}
	if err := hp.phase4BRest(); err != nil {
		return nil, err
	}
	res.Stats.TypeI = count(typeI)

	if err := coloring.VerifyComplete(g, res.Coloring, delta); err != nil {
		return nil, fmt.Errorf("core: final verification: %w", err)
	}
	if err := net.Checkpoint("final", &CkptColoring{C: res.Coloring, NumColors: delta, Complete: true}); err != nil {
		return nil, err
	}
	res.Rounds = net.Rounds()
	res.Spans = net.Spans()
	return res, nil
}
