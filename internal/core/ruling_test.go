package core

import (
	"testing"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func TestRulingHardCliqueBipartite(t *testing.T) {
	g, _ := graph.HardCliqueBipartite(16, 16)
	res, err := ColorRuling(local.New(g), TestParams())
	if err != nil {
		t.Fatalf("ColorRuling: %v", err)
	}
	requireColoring(t, g, res)
	if res.Stats.HardCliques != 32 || res.Stats.EasyCliques != 0 {
		t.Fatalf("stats: %+v", res.Stats)
	}
	if res.Stats.TypeI == 0 {
		t.Fatal("ruling selection produced no Type I cliques")
	}
	if res.Stats.Triads != res.Stats.TypeI {
		t.Fatalf("Triads = %d, TypeI = %d", res.Stats.Triads, res.Stats.TypeI)
	}
}

func TestRulingEasyCliqueRing(t *testing.T) {
	g, _ := graph.EasyCliqueRing(8, 16)
	res, err := ColorRuling(local.New(g), TestParams())
	if err != nil {
		t.Fatalf("ColorRuling: %v", err)
	}
	requireColoring(t, g, res)
	if res.Stats.HardCliques != 0 || res.Stats.EasyCliques != 8 {
		t.Fatalf("stats: %+v", res.Stats)
	}
}

func TestRulingMixedHardEasy(t *testing.T) {
	g, _ := graph.HardWithEasyPatch(16, 16)
	res, err := ColorRuling(local.New(g), TestParams())
	if err != nil {
		t.Fatalf("ColorRuling: %v", err)
	}
	requireColoring(t, g, res)
	if res.Stats.HardCliques != 28 || res.Stats.EasyCliques != 4 {
		t.Fatalf("stats: %+v", res.Stats)
	}
}

func TestRulingEasyDenseBlocks(t *testing.T) {
	g, _ := graph.EasyDenseBlocks(8, 63, 1)
	res, err := ColorRuling(local.New(g), TestParams())
	if err != nil {
		t.Fatalf("ColorRuling: %v", err)
	}
	requireColoring(t, g, res)
}

// TestRulingWorkerIndependence pins the ruling route to the repository's
// determinism contract: identical colors and rounds at any worker count on
// either engine.
func TestRulingWorkerIndependence(t *testing.T) {
	g, _ := graph.HardCliqueBipartite(16, 16)
	base, err := ColorRuling(local.New(g), TestParams())
	if err != nil {
		t.Fatalf("ColorRuling: %v", err)
	}
	for _, workers := range []int{2, 8} {
		for _, frontier := range []bool{true, false} {
			net := local.New(g)
			net.SetWorkers(workers)
			net.SetFrontier(frontier)
			res, err := ColorRuling(net, TestParams())
			if err != nil {
				t.Fatalf("workers=%d frontier=%v: %v", workers, frontier, err)
			}
			if res.Rounds != base.Rounds {
				t.Fatalf("workers=%d frontier=%v: rounds %d != %d", workers, frontier, res.Rounds, base.Rounds)
			}
			for v, c := range res.Coloring.Colors {
				if c != base.Coloring.Colors[v] {
					t.Fatalf("workers=%d frontier=%v: vertex %d color %d != %d", workers, frontier, v, c, base.Coloring.Colors[v])
				}
			}
		}
	}
}

// TestRulingSpansAndPairLoad pins the route's shape: the ruling-set and
// selection phases replace matching/HEG/sparsify, and the load-balanced
// selection keeps the pair-coloring phase no more expensive than the
// deterministic pipeline's (the ruling set trades total rounds for a
// cheaper, coordination-free selection; EXPERIMENTS.md E22 quantifies the
// trade on every workload).
func TestRulingSpansAndPairLoad(t *testing.T) {
	g, _ := graph.HardCliqueBipartite(16, 16)
	det, err := ColorDeterministic(local.New(g), TestParams())
	if err != nil {
		t.Fatalf("ColorDeterministic: %v", err)
	}
	rul, err := ColorRuling(local.New(g), TestParams())
	if err != nil {
		t.Fatalf("ColorRuling: %v", err)
	}
	spanRounds := func(res *Result, name string) int {
		for _, sp := range res.Spans {
			if sp.Name == name {
				return sp.Rounds
			}
		}
		return -1
	}
	for _, name := range []string{"ruling/acd", "ruling/classify", "ruling/rulingset", "ruling/select", "alg2/triads", "alg2/pairs", "alg2/rest"} {
		if spanRounds(rul, name) < 0 {
			t.Fatalf("span %q missing from ruling run: %+v", name, rul.Spans)
		}
	}
	for _, name := range []string{"alg2/matching", "alg2/heg", "alg2/sparsify"} {
		if spanRounds(rul, name) >= 0 {
			t.Fatalf("span %q should not appear in a ruling run", name)
		}
	}
	if rp, dp := spanRounds(rul, "alg2/pairs"), spanRounds(det, "alg2/pairs"); rp > dp {
		t.Fatalf("ruling pair coloring costs %d rounds > deterministic %d", rp, dp)
	}
}
