package core

import (
	"fmt"
	"math/rand"
	"slices"

	"deltacoloring/internal/acd"
	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/listcolor"
	"deltacoloring/internal/local"
	"deltacoloring/internal/loophole"
)

// RandomizedParams configures Algorithm 4 (Theorem 2).
type RandomizedParams struct {
	Params
	// TProb is the probability with which each hard clique proposes a
	// T-node in the pre-shattering phase.
	TProb float64
	// Spacing is the parameter b: surviving T-nodes are pairwise at hop
	// distance at least Spacing, which limits "useless" vertices to at
	// most one per clique (Section 4, Step 6 discussion).
	Spacing int
	// HappyRadius is the number of layers around each T-node's slack
	// vertex that are set aside and colored inward at the end.
	HappyRadius int
}

// DefaultRandomizedParams mirrors the paper's constants (b is any constant;
// we default to 4).
func DefaultRandomizedParams() RandomizedParams {
	return RandomizedParams{Params: DefaultParams(), TProb: 0.5, Spacing: 4, HappyRadius: 5}
}

// TestRandomizedParams is the scaled-down preset (see TestParams).
func TestRandomizedParams() RandomizedParams {
	return RandomizedParams{Params: TestParams(), TProb: 0.5, Spacing: 4, HappyRadius: 5}
}

// RandStats extends Stats with shattering measurements.
type RandStats struct {
	// TNodesProposed and TNodesKept count the pre-shattering T-nodes.
	TNodesProposed, TNodesKept int
	// Components is the number of post-shattering components and
	// MaxComponent the largest component size.
	Components, MaxComponent int
	// ComponentRounds is the maximum rounds any single component consumed
	// (components run in parallel in LOCAL).
	ComponentRounds int
	// HardLikeInComponents counts cliques that went through the full
	// Algorithm 2 machinery inside a component (as opposed to leaning on
	// out-of-component slack).
	HardLikeInComponents int
}

// RandomizedResult bundles the coloring with both stat blocks.
type RandomizedResult struct {
	Result
	Rand RandStats
}

// ColorRandomized runs Theorem 2's randomized Δ-coloring (Algorithm 4):
// pre-shattering by random T-node placement (slack pairs colored with the
// reserved color 0), deterministic post-shattering on the small remaining
// components via the Algorithm 2/3 machinery with color space {1..Δ-1} for
// slack pairs, then inward coloring of the T-node layers and finally the
// easy cliques and loopholes. The graph must be dense with no (Δ+1)-clique.
//
// The Δ = ω(log²¹ n) branch of the paper (an O(log* n) algorithm from
// [FHM23]) is out of scope; the shattering path is taken for every Δ. See
// DESIGN.md, substitutions.
func ColorRandomized(net *local.Network, rp RandomizedParams, rng *rand.Rand) (*RandomizedResult, error) {
	g := net.Graph()
	delta := g.MaxDegree()
	if err := rp.Validate(delta); err != nil {
		return nil, err
	}
	if rp.TProb <= 0 || rp.TProb > 1 || rp.Spacing < 4 || rp.HappyRadius < 2 {
		return nil, fmt.Errorf("core: invalid randomized params %+v", rp)
	}
	res := &RandomizedResult{Result: Result{Coloring: coloring.NewPartial(g.N())}}
	res.Stats.N = g.N()
	res.Stats.Delta = delta
	if g.N() == 0 {
		return res, nil
	}
	if delta < 3 {
		return nil, fmt.Errorf("core: randomized algorithm needs Δ >= 3, got %d", delta)
	}
	out := res.Coloring

	// Shared preprocessing with Theorem 1 (ACD, Brooks, classification).
	doneACD := net.Phase("alg4/acd")
	a, err := acd.Compute(net, rp.Eps)
	if err == nil {
		err = net.Checkpoint("alg4/acd", &CkptACD{A: a})
	}
	doneACD()
	if err != nil {
		return nil, err
	}
	if !a.IsDense() {
		return nil, fmt.Errorf("%w: %d sparse vertices", ErrNotDense, a.SparseCount())
	}
	res.Stats.NumCliques = len(a.Cliques)
	for _, members := range a.Cliques {
		if len(members) == delta+1 && g.IsClique(members) {
			return nil, ErrBrooks
		}
	}
	doneCl := net.Phase("alg4/classify")
	cl := loophole.Classify(g, a)
	err = loophole.VerifyHard(g, a, cl)
	if err == nil {
		err = net.Checkpoint("alg4/classify", &CkptClassification{A: a, Cl: cl})
	}
	net.Charge(3)
	doneCl()
	if err != nil {
		return nil, err
	}
	hardOf := make([]int, g.N())
	for v := range hardOf {
		hardOf[v] = -1
	}
	hardCount := 0
	for ci, members := range a.Cliques {
		if !cl.Easy[ci] {
			hardCount++
			for _, v := range members {
				hardOf[v] = ci
			}
		}
	}
	res.Stats.HardCliques = hardCount
	res.Stats.EasyCliques = len(a.Cliques) - hardCount

	// Pre-shattering (Step 5): propose T-nodes, keep a spaced subset, and
	// color their slack pairs with the reserved color 0.
	donePre := net.Phase("alg4/preshatter")
	tnodes := placeTNodes(g, a, cl, hardOf, rp, rng)
	res.Rand.TNodesProposed = tnodes.proposed
	res.Rand.TNodesKept = len(tnodes.kept)
	for _, tr := range tnodes.kept {
		out.Colors[tr.PairIn] = 0
		out.Colors[tr.PairOut] = 0
	}
	net.Charge(rp.Spacing + 2)
	donePre()
	if err := coloring.VerifyProper(g, out, delta); err != nil {
		return nil, fmt.Errorf("core: T-node pair coloring improper: %w", err)
	}
	if err := net.Checkpoint("alg4/preshatter", &CkptColoring{C: out, NumColors: delta}); err != nil {
		return nil, err
	}

	// Happy region: hard vertices within HappyRadius of a kept slack
	// vertex (colored inward at the end).
	happy := make([]bool, g.N())
	frontier := make([]int, 0, len(tnodes.kept))
	for _, tr := range tnodes.kept {
		happy[tr.Slack] = true
		frontier = append(frontier, tr.Slack)
	}
	for depth := 1; depth <= rp.HappyRadius; depth++ {
		var next []int
		for _, v := range frontier {
			for _, nw := range g.Neighbors(v) {
				w := int(nw)
				if !happy[w] && hardOf[w] >= 0 && !out.Colored(w) {
					happy[w] = true
					next = append(next, w)
				}
			}
		}
		frontier = next
	}

	// Post-shattering components: uncolored, unhappy hard vertices.
	inU := func(v int) bool { return hardOf[v] >= 0 && !out.Colored(v) && !happy[v] }
	comps := componentsOf(g, inU)
	res.Rand.Components = len(comps)
	for _, c := range comps {
		if len(c) > res.Rand.MaxComponent {
			res.Rand.MaxComponent = len(c)
		}
	}

	// Step 6: the modified deterministic algorithm on each component.
	// Components are vertex-disjoint and interact only through vertices
	// that stay uncolored throughout, so they run in parallel; we charge
	// the maximum component cost.
	doneComp := net.Phase("alg4/components")
	maxRounds := 0
	for _, comp := range comps {
		compNet := local.New(g)
		hardLike, err := colorComponent(compNet, a, cl, rp, out, comp)
		if err != nil {
			doneComp()
			return nil, fmt.Errorf("core: component of size %d: %w", len(comp), err)
		}
		res.Rand.HardLikeInComponents += hardLike
		if compNet.Rounds() > maxRounds {
			maxRounds = compNet.Rounds()
		}
	}
	net.Charge(maxRounds)
	res.Rand.ComponentRounds = maxRounds
	doneComp()

	// Post-processing I: color the happy layers inward (Step 7), then the
	// slack vertices (which keep permanent slack from their same-colored
	// pairs), using the full palette [0, Δ).
	doneHappy := net.Phase("alg4/happylayers")
	err = colorHappyLayers(net, g, out, delta, rp.HappyRadius, tnodes.kept, hardOf)
	if err == nil {
		err = net.Checkpoint("alg4/happylayers", &CkptColoring{C: out, NumColors: delta})
	}
	doneHappy()
	if err != nil {
		return nil, err
	}

	// Post-processing II: easy cliques and loopholes via Algorithm 3.
	spec := instanceSpec{hardLike: make([]bool, len(a.Cliques)), witness: cl.Witness}
	for ci := range a.Cliques {
		spec.hardLike[ci] = !cl.Easy[ci]
	}
	var st2 Stats
	hp := newHardPipeline(net, a, spec, rp.Params, out, &st2)
	ec := &easyColorer{hp: hp}
	if err := ec.run(); err != nil {
		return nil, err
	}
	res.Stats.Layers = st2.Layers

	if err := coloring.VerifyComplete(g, out, delta); err != nil {
		return nil, fmt.Errorf("core: final verification: %w", err)
	}
	if err := net.Checkpoint("final", &CkptColoring{C: out, NumColors: delta, Complete: true}); err != nil {
		return nil, err
	}
	res.Rounds = net.Rounds()
	res.Spans = net.Spans()
	res.Frontier = net.FrontierStats()
	return res, nil
}

// tnodePlacement is the outcome of the randomized T-node sampling.
type tnodePlacement struct {
	proposed int
	kept     []Triad
}

// placeTNodes samples one T-node proposal per hard clique with probability
// TProb and keeps a subset that is pairwise at distance >= Spacing, by
// local-maxima filtering on random priorities.
func placeTNodes(g *graph.Graph, a *acd.ACD, cl *loophole.Classification,
	hardOf []int, rp RandomizedParams, rng *rand.Rand) tnodePlacement {
	var pl tnodePlacement
	type proposal struct {
		tr   Triad
		rank uint64
	}
	var props []proposal
	at := make(map[int]int) // vertex -> proposal index
	for ci, members := range a.Cliques {
		if cl.Easy[ci] || rng.Float64() >= rp.TProb {
			continue
		}
		// Random slack vertex u with an external hard partner w; PairIn is
		// a random other member (non-adjacent to w by Lemma 9.3).
		perm := rng.Perm(len(members))
		tr := Triad{Slack: -1, Clique: ci}
		for _, i := range perm {
			u := members[i]
			for _, w := range g.Neighbors(u) {
				if hardOf[w] >= 0 && hardOf[w] != ci {
					tr.Slack, tr.PairOut = u, int(w)
					break
				}
			}
			if tr.Slack >= 0 {
				break
			}
		}
		if tr.Slack < 0 {
			continue // no member with an external hard partner
		}
		for _, i := range perm {
			v := members[i]
			if v != tr.Slack {
				tr.PairIn = v
				break
			}
		}
		if g.HasEdge(tr.PairIn, tr.PairOut) {
			continue // defensive; Lemma 9.3 should rule this out
		}
		pl.proposed++
		props = append(props, proposal{tr: tr, rank: rng.Uint64()})
	}
	for i, p := range props {
		for _, v := range [3]int{p.tr.Slack, p.tr.PairIn, p.tr.PairOut} {
			at[v] = i
		}
	}
	// Iterated local-maxima filtering (Luby-style, constant iterations):
	// each round, a still-live proposal joins the kept set iff no
	// higher-ranked live proposal and no already-kept proposal has a
	// vertex within Spacing of its own; its conflicting neighbors die.
	// Constant iterations keep the cost O(Spacing) rounds and already
	// select a near-maximal spaced subset, which is what shatters the
	// graph effectively.
	state := make([]int, len(props)) // 0 live, 1 kept, 2 dead
	// The filter queries each proposal's conflict set up to twice per
	// iteration; collecting the radius-Spacing balls once per proposal into
	// a conflict adjacency keeps the (profile-dominating) BFS work out of
	// the iteration loop. Deduplication does not change any outcome: the
	// per-query condition is a pure read of rank and state.
	adj := make([][]int32, len(props))
	var scratch []int32
	var ball []int
	for i, p := range props {
		scratch = scratch[:0]
		for _, v := range [3]int{p.tr.Slack, p.tr.PairIn, p.tr.PairOut} {
			// Unsorted ball: the hits are sorted below anyway, so the
			// per-vertex sort.Ints inside NeighborsWithin was pure overhead.
			ball = g.AppendBall(ball[:0], v, rp.Spacing)
			for _, w := range ball {
				if j, ok := at[w]; ok && j != i {
					scratch = append(scratch, int32(j))
				}
			}
		}
		slices.Sort(scratch)
		for k, j := range scratch {
			if k == 0 || scratch[k-1] != j {
				adj[i] = append(adj[i], j)
			}
		}
	}
	conflicts := func(i int, cond func(j int) bool) bool {
		for _, j := range adj[i] {
			if cond(int(j)) {
				return true
			}
		}
		return false
	}
	for iter := 0; iter < 4; iter++ {
		var joined []int
		for i := range props {
			if state[i] != 0 {
				continue
			}
			beaten := conflicts(i, func(j int) bool {
				if state[j] == 1 {
					return true
				}
				if state[j] != 0 {
					return false
				}
				return props[j].rank > props[i].rank || (props[j].rank == props[i].rank && j < i)
			})
			if !beaten {
				joined = append(joined, i)
			}
		}
		if len(joined) == 0 {
			break
		}
		for _, i := range joined {
			state[i] = 1
		}
		for i := range props {
			if state[i] == 0 && conflicts(i, func(j int) bool { return state[j] == 1 }) {
				state[i] = 2
			}
		}
	}
	for i, p := range props {
		if state[i] == 1 {
			pl.kept = append(pl.kept, p.tr)
		}
	}
	return pl
}

// colorHappyLayers colors the set-aside layers around T-node slack
// vertices outside-in, then the slack vertices themselves.
func colorHappyLayers(net *local.Network, g *graph.Graph, out *coloring.Partial,
	delta, radius int, kept []Triad, hardOf []int) error {
	layer := make([]int, g.N())
	for v := range layer {
		layer[v] = -1
	}
	var frontier []int
	for _, tr := range kept {
		layer[tr.Slack] = 0
		frontier = append(frontier, tr.Slack)
	}
	maxLayer := 0
	for depth := 1; depth <= radius && len(frontier) > 0; depth++ {
		var next []int
		for _, v := range frontier {
			for _, nw := range g.Neighbors(v) {
				w := int(nw)
				if layer[w] == -1 && hardOf[w] >= 0 && !out.Colored(w) {
					layer[w] = depth
					next = append(next, w)
				}
			}
		}
		if len(next) > 0 {
			maxLayer = depth
		}
		frontier = next
	}
	net.Charge(radius)
	for v := 0; v < g.N(); v++ {
		if hardOf[v] >= 0 && !out.Colored(v) && layer[v] == -1 {
			return fmt.Errorf("core: uncolored hard vertex %d is neither in a component nor happy", v)
		}
	}
	for depth := maxLayer; depth >= 0; depth-- {
		inst := listcolor.Instance{Active: make([]bool, g.N()), Lists: make([]coloring.Palette, g.N())}
		any := false
		for v := 0; v < g.N(); v++ {
			if layer[v] == depth && !out.Colored(v) {
				inst.Active[v] = true
				coloring.AvailableInto(&inst.Lists[v], g, out, v, delta)
				any = true
			}
		}
		if !any {
			continue
		}
		if err := listcolor.Solve(net, inst, out); err != nil {
			return fmt.Errorf("core: happy layer %d: %w", depth, err)
		}
	}
	return nil
}

// componentsOf returns the connected components of the subgraph induced by
// the predicate.
func componentsOf(g *graph.Graph, in func(int) bool) [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for s := 0; s < g.N(); s++ {
		if seen[s] || !in(s) {
			continue
		}
		comp := []int{s}
		seen[s] = true
		for q := 0; q < len(comp); q++ {
			for _, nw := range g.Neighbors(comp[q]) {
				w := int(nw)
				if !seen[w] && in(w) {
					seen[w] = true
					comp = append(comp, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// colorComponent runs the modified deterministic algorithm on one
// post-shattering component: cliques whose active members all lack outside
// slack stay hard-like (with one tolerated useless member); the rest are
// easy-like, witnessed by an external-slack singleton; slack pairs use the
// color space {1, ..., Δ-1}.
func colorComponent(compNet *local.Network, a *acd.ACD, cl *loophole.Classification,
	rp RandomizedParams, out *coloring.Partial, comp []int) (int, error) {
	g := compNet.Graph()
	active := make([]bool, g.N())
	for _, v := range comp {
		active[v] = true
	}
	spec := instanceSpec{
		hardLike:      make([]bool, len(a.Cliques)),
		witness:       make([]*loophole.Loophole, len(a.Cliques)),
		active:        active,
		pairColorBase: 1,
		extraLoss:     1,
	}
	for ci, members := range a.Cliques {
		anyActive := false
		slackVert := -1
		for _, v := range members {
			if !active[v] {
				continue
			}
			anyActive = true
			if slackVert >= 0 {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if !active[w] && !out.Colored(int(w)) {
					slackVert = v
					break
				}
			}
		}
		if !anyActive {
			continue
		}
		if cl.Easy[ci] {
			return 0, fmt.Errorf("core: easy clique %d intersects a post-shattering component", ci)
		}
		if slackVert >= 0 {
			// Easy-like: a member with an uncolored inactive neighbor is a
			// slack source (the paper's extended loophole definition).
			spec.witness[ci] = loophole.NewExternalSlack(slackVert)
		} else {
			spec.hardLike[ci] = true
		}
	}
	hardLike := 0
	for _, h := range spec.hardLike {
		if h {
			hardLike++
		}
	}
	var st Stats
	hp := newHardPipeline(compNet, a, spec, rp.Params, out, &st)
	if err := hp.run(); err != nil {
		return hardLike, err
	}
	ec := &easyColorer{hp: hp}
	if err := ec.run(); err != nil {
		return hardLike, err
	}
	return hardLike, nil
}
