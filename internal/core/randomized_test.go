package core

import (
	"errors"
	"math/rand"
	"testing"

	"deltacoloring/internal/acd"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
	"deltacoloring/internal/loophole"
)

func TestRandomizedHardCliqueBipartite(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g, _ := graph.HardCliqueBipartite(16, 16)
	res, err := ColorRandomized(local.New(g), TestRandomizedParams(), rng)
	if err != nil {
		t.Fatalf("ColorRandomized: %v", err)
	}
	requireColoring(t, g, &res.Result)
	if res.Rand.TNodesProposed == 0 {
		t.Fatal("no T-nodes proposed (expected ~half the cliques)")
	}
	if res.Rand.TNodesKept == 0 {
		t.Fatal("no T-nodes survived spacing")
	}
	if res.Rand.TNodesKept > res.Rand.TNodesProposed {
		t.Fatal("kept more T-nodes than proposed")
	}
}

func TestRandomizedManySeeds(t *testing.T) {
	g, _ := graph.HardCliqueBipartite(16, 16)
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		res, err := ColorRandomized(local.New(g), TestRandomizedParams(), rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		requireColoring(t, g, &res.Result)
	}
}

func TestRandomizedEasyOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g, _ := graph.EasyCliqueRing(8, 16)
	res, err := ColorRandomized(local.New(g), TestRandomizedParams(), rng)
	if err != nil {
		t.Fatalf("ColorRandomized: %v", err)
	}
	requireColoring(t, g, &res.Result)
	if res.Rand.TNodesProposed != 0 {
		t.Fatal("T-nodes proposed in a graph with no hard cliques")
	}
}

func TestRandomizedMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g, _ := graph.HardWithEasyPatch(16, 16)
	res, err := ColorRandomized(local.New(g), TestRandomizedParams(), rng)
	if err != nil {
		t.Fatalf("ColorRandomized: %v", err)
	}
	requireColoring(t, g, &res.Result)
}

func TestRandomizedRejectsSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	g := graph.Torus(8, 8) // Δ = 4, all sparse
	if _, err := ColorRandomized(local.New(g), TestRandomizedParams(), rng); !errors.Is(err, ErrNotDense) {
		t.Fatalf("expected ErrNotDense, got %v", err)
	}
}

func TestRandomizedRejectsBrooks(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	g := graph.Union(graph.Complete(17), graph.Complete(17))
	if _, err := ColorRandomized(local.New(g), TestRandomizedParams(), rng); !errors.Is(err, ErrBrooks) {
		t.Fatalf("expected ErrBrooks, got %v", err)
	}
}

func TestRandomizedRejectsBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	g, _ := graph.HardCliqueBipartite(16, 16)
	p := TestRandomizedParams()
	p.TProb = 0
	if _, err := ColorRandomized(local.New(g), p, rng); err == nil {
		t.Fatal("accepted TProb = 0")
	}
	p = TestRandomizedParams()
	p.Spacing = 1
	if _, err := ColorRandomized(local.New(g), p, rng); err == nil {
		t.Fatal("accepted tiny spacing")
	}
}

// The spacing invariant: surviving T-node vertex sets are pairwise at
// distance >= Spacing.
func TestTNodeSpacing(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g, _ := graph.HardCliqueBipartite(16, 16)
	net := local.New(g)
	a, cl, hardOf := classifyForTest(t, net)
	rp := TestRandomizedParams()
	pl := placeTNodes(g, a, cl, hardOf, rp, rng)
	if len(pl.kept) == 0 {
		t.Skip("no kept T-nodes for this seed")
	}
	for i := 0; i < len(pl.kept); i++ {
		for j := i + 1; j < len(pl.kept); j++ {
			for _, u := range []int{pl.kept[i].Slack, pl.kept[i].PairIn, pl.kept[i].PairOut} {
				for _, w := range []int{pl.kept[j].Slack, pl.kept[j].PairIn, pl.kept[j].PairOut} {
					if d := g.Dist(u, w); d >= 0 && d < rp.Spacing {
						t.Fatalf("kept T-nodes %d and %d at distance %d < %d", i, j, d, rp.Spacing)
					}
				}
			}
		}
	}
	// Every kept T-node is a valid slack triad.
	for _, tr := range pl.kept {
		if !g.HasEdge(tr.Slack, tr.PairIn) || !g.HasEdge(tr.Slack, tr.PairOut) {
			t.Fatalf("T-node %+v pair not adjacent to slack", tr)
		}
		if g.HasEdge(tr.PairIn, tr.PairOut) {
			t.Fatalf("T-node %+v pair adjacent", tr)
		}
	}
}

func classifyForTest(t *testing.T, net *local.Network) (*acd.ACD, *loophole.Classification, []int) {
	t.Helper()
	g := net.Graph()
	ac, err := acd.Compute(net, TestParams().Eps)
	if err != nil {
		t.Fatal(err)
	}
	c := loophole.Classify(g, ac)
	hardOf := make([]int, g.N())
	for v := range hardOf {
		hardOf[v] = -1
	}
	for ci, members := range ac.Cliques {
		if !c.Easy[ci] {
			for _, v := range members {
				hardOf[v] = ci
			}
		}
	}
	return ac, c, hardOf
}

// The randomized shattering should leave components much smaller than the
// graph on the hard family.
func TestRandomizedShatters(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test")
	}
	rng := rand.New(rand.NewSource(38))
	g, _ := graph.HardCliqueBipartite(48, 16)
	res, err := ColorRandomized(local.New(g), TestRandomizedParams(), rng)
	if err != nil {
		t.Fatalf("ColorRandomized: %v", err)
	}
	requireColoring(t, g, &res.Result)
	if res.Rand.Components > 0 && res.Rand.MaxComponent >= g.N() {
		t.Fatalf("no shattering: max component %d of %d", res.Rand.MaxComponent, g.N())
	}
}

func TestDefaultRandomizedParamsValid(t *testing.T) {
	p := DefaultRandomizedParams()
	if err := p.Validate(126); err != nil {
		t.Fatalf("paper randomized params invalid at Δ=126: %v", err)
	}
	if p.TProb <= 0 || p.Spacing < 4 || p.HappyRadius < 2 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
}

// At larger scale some shattered components must contain genuinely
// hard-like cliques, exercising the full Algorithm 2 machinery inside the
// post-shattering phase.
func TestRandomizedComponentsRunHardMachinery(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test")
	}
	total := 0
	g, _ := graph.HardCliqueBipartite(64, 16)
	// A sparse T-node placement leaves large components whose interiors
	// are beyond every out-of-component slack source.
	p := TestRandomizedParams()
	p.TProb = 0.05
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		res, err := ColorRandomized(local.New(g), p, rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		requireColoring(t, g, &res.Result)
		total += res.Rand.HardLikeInComponents
	}
	if total == 0 {
		t.Fatal("no component ever contained a hard-like clique across 4 seeds")
	}
}
