package core

import (
	"fmt"
	"sort"

	"deltacoloring/internal/acd"
	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/heg"
	"deltacoloring/internal/listcolor"
	"deltacoloring/internal/local"
	"deltacoloring/internal/loophole"
	"deltacoloring/internal/matching"
	"deltacoloring/internal/split"
)

// DirEdge is an oriented edge (Tail -> Head).
type DirEdge struct {
	Tail, Head int
}

// Triad is a slack triad (Definition 14): Slack's neighbors PairIn (same
// clique) and PairOut (other clique) are non-adjacent and get the same
// color, giving Slack one unit of permanent slack.
type Triad struct {
	Slack, PairIn, PairOut int
	// Clique is the hard clique owning the triad.
	Clique int
}

// instanceSpec describes one coloring instance: the whole graph for
// Theorem 1, or one shattered component for Theorem 2's post-shattering.
type instanceSpec struct {
	// hardLike flags the cliques handled by Algorithm 2; the rest are
	// handled by Algorithm 3 using the witnesses.
	hardLike []bool
	// witness provides a slack source per non-hard clique.
	witness []*loophole.Loophole
	// active restricts the instance to a vertex subset (nil = all).
	// Inactive vertices are either already colored or left for later; an
	// uncolored inactive neighbor is a slack source.
	active []bool
	// pairColorBase shifts the slack-pair palette: the randomized
	// algorithm reserves color 0 for its T-nodes and passes 1 (Section 4,
	// Step 6).
	pairColorBase int
	// extraLoss is the number of "useless" members tolerated per clique in
	// C_HEG (Section 4: vertices adjacent to pre-colored T-node pairs
	// cannot propose).
	extraLoss int
}

// hardPipeline carries the state of Algorithm 2 across its phases. Tests
// exercise the phases individually; the driver runs them in order.
type hardPipeline struct {
	net   *local.Network
	g     *graph.Graph
	a     *acd.ACD
	spec  instanceSpec
	p     Params
	delta int
	out   *coloring.Partial
	stats *Stats

	hard   []bool // per clique
	hardOf []int  // (active) vertex -> hard clique index, or -1
	inHEG  []bool // per clique: at most extraLoss members cannot propose
	eHard  []graph.Edge

	f1   []graph.Edge
	f1At []int // vertex -> incident F1 edge index, or -1

	fOf    []int // f(v), or -1
	phiOf  []int // φ(v): F1 edge index, or -1
	subOf  []int // vertex -> global sub-clique id, or -1
	subVec [][]int
	subOwn []int // sub-clique id -> clique

	hyper     *heg.Hypergraph
	hyperEdge []int // hypergraph edge index -> F1 edge index

	f2, f3 []DirEdge
	typeI  []bool
	triads []Triad
	anchor []int // per clique: reserved uncolored vertex, or -1
}

// isActive reports whether v belongs to the instance.
func (hp *hardPipeline) isActive(v int) bool {
	return hp.spec.active == nil || hp.spec.active[v]
}

// members returns the active members of clique ci.
func (hp *hardPipeline) members(ci int) []int {
	all := hp.a.Cliques[ci]
	if hp.spec.active == nil {
		return all
	}
	out := make([]int, 0, len(all))
	for _, v := range all {
		if hp.spec.active[v] {
			out = append(out, v)
		}
	}
	return out
}

// newHardPipeline prepares V_hard, E_hard, and C_HEG for the instance.
func newHardPipeline(net *local.Network, a *acd.ACD, spec instanceSpec,
	p Params, out *coloring.Partial, stats *Stats) *hardPipeline {
	g := net.Graph()
	hp := &hardPipeline{
		net: net, g: g, a: a, spec: spec, p: p, delta: g.MaxDegree(),
		out: out, stats: stats,
		hard:   make([]bool, len(a.Cliques)),
		hardOf: make([]int, g.N()),
		inHEG:  make([]bool, len(a.Cliques)),
		anchor: make([]int, len(a.Cliques)),
	}
	for v := range hp.hardOf {
		hp.hardOf[v] = -1
	}
	for ci := range a.Cliques {
		hp.anchor[ci] = -1
		hp.hard[ci] = spec.hardLike[ci]
		if hp.hard[ci] {
			for _, v := range hp.members(ci) {
				hp.hardOf[v] = ci
			}
		}
	}
	for ci := range a.Cliques {
		if !hp.hard[ci] {
			continue
		}
		unusable := 0
		for _, v := range hp.members(ci) {
			hasExternalHard := false
			for _, nw := range g.Neighbors(v) {
				w := int(nw)
				if hp.hardOf[w] >= 0 && hp.hardOf[w] != ci {
					hasExternalHard = true
					if v < w {
						hp.eHard = append(hp.eHard, graph.Edge{U: v, V: w})
					}
				}
			}
			if !hasExternalHard {
				unusable++
			}
		}
		hp.inHEG[ci] = unusable <= spec.extraLoss
	}
	sort.Slice(hp.eHard, func(i, j int) bool {
		if hp.eHard[i].U != hp.eHard[j].U {
			return hp.eHard[i].U < hp.eHard[j].U
		}
		return hp.eHard[i].V < hp.eHard[j].V
	})
	return hp
}

// phase1Matching computes the maximal matching F1 on E_hard (Step 1).
func (hp *hardPipeline) phase1Matching() error {
	done := hp.net.Phase("alg2/matching")
	defer done()
	f1, err := matching.MaximalOn(hp.net, hp.eHard)
	if err != nil {
		return fmt.Errorf("core: phase 1 matching: %w", err)
	}
	if err := matching.Verify(hp.g, f1, hp.eHard); err != nil {
		return fmt.Errorf("core: phase 1 matching invalid: %w", err)
	}
	hp.f1 = f1
	hp.f1At = make([]int, hp.g.N())
	for v := range hp.f1At {
		hp.f1At[v] = -1
	}
	for i, e := range f1 {
		hp.f1At[e.U] = i
		hp.f1At[e.V] = i
	}
	hp.stats.F1Size = len(f1)
	return hp.net.Checkpoint("alg2/matching", &CkptMatching{Matched: f1, Within: hp.eHard})
}

// phase1HEG builds the proposal hypergraph H (Section 3.3), checks the
// Lemma 10/11 invariants, solves HEG, and assembles the oriented matching
// F2 (Lemma 12).
func (hp *hardPipeline) phase1HEG() error {
	done := hp.net.Phase("alg2/heg")
	defer done()
	g := hp.g

	// Sub-clique partition: members round-robin into P parts.
	hp.subOf = make([]int, g.N())
	hp.fOf = make([]int, g.N())
	hp.phiOf = make([]int, g.N())
	for v := range hp.subOf {
		hp.subOf[v] = -1
		hp.fOf[v] = -1
		hp.phiOf[v] = -1
	}
	for ci := range hp.a.Cliques {
		if !hp.inHEG[ci] {
			continue
		}
		for idx, v := range hp.members(ci) {
			hp.subOf[v] = idx % hp.p.Subcliques // temporary: part index within clique
		}
	}
	// Materialize global sub-clique ids.
	hp.subVec = nil
	hp.subOwn = nil
	subID := map[[2]int]int{}
	for ci := range hp.a.Cliques {
		if !hp.inHEG[ci] {
			continue
		}
		for _, v := range hp.members(ci) {
			k := [2]int{ci, hp.subOf[v]}
			id, ok := subID[k]
			if !ok {
				id = len(hp.subVec)
				subID[k] = id
				hp.subVec = append(hp.subVec, nil)
				hp.subOwn = append(hp.subOwn, ci)
			}
			hp.subOf[v] = -1 // reset; set below
			hp.subVec[id] = append(hp.subVec[id], v)
		}
	}
	for id, vs := range hp.subVec {
		for _, v := range vs {
			hp.subOf[v] = id
		}
	}

	// f(v) and φ(v) for members of C_HEG cliques (one LOCAL round to learn
	// neighbors' matching state). Members without an external hard
	// neighbor — tolerated up to extraLoss per clique (Section 4's
	// "useless" vertices) — simply do not propose.
	hp.net.Charge(1)
	for ci := range hp.a.Cliques {
		if !hp.inHEG[ci] {
			continue
		}
		unusable := 0
		for _, v := range hp.members(ci) {
			if hp.f1At[v] >= 0 {
				hp.fOf[v] = v
				hp.phiOf[v] = hp.f1At[v]
				continue
			}
			// Minimum-ID external neighbor in a hard clique; maximality of
			// F1 guarantees it is matched.
			best := -1
			for _, nw := range g.Neighbors(v) {
				w := int(nw)
				if hp.hardOf[w] >= 0 && hp.hardOf[w] != ci {
					if best == -1 || g.ID(w) < g.ID(best) {
						best = w
					}
				}
			}
			if best == -1 {
				unusable++
				if unusable > hp.spec.extraLoss {
					return fmt.Errorf("core: C_HEG clique %d has %d members without external hard neighbors", ci, unusable)
				}
				continue
			}
			if hp.f1At[best] < 0 {
				return fmt.Errorf("core: f(%d)=%d is unmatched; F1 not maximal", v, best)
			}
			hp.fOf[v] = best
			hp.phiOf[v] = hp.f1At[best]
		}
	}

	// Lemma 10: the members of one sub-clique request pairwise distinct
	// F1 edges (and pairwise distinct f-targets).
	for id, vs := range hp.subVec {
		seenPhi := map[int]int{}
		seenF := map[int]int{}
		for _, v := range vs {
			if hp.phiOf[v] < 0 {
				continue // tolerated non-proposer
			}
			if w, dup := seenPhi[hp.phiOf[v]]; dup {
				return fmt.Errorf("core: Lemma 10 violated: sub-clique %d members %d and %d request F1 edge %d",
					id, w, v, hp.phiOf[v])
			}
			seenPhi[hp.phiOf[v]] = v
			if w, dup := seenF[hp.fOf[v]]; dup {
				return fmt.Errorf("core: Lemma 10 violated: sub-clique %d members %d and %d share f-target",
					id, w, v)
			}
			seenF[hp.fOf[v]] = v
		}
	}

	// Hypergraph H: one hyperedge per requested F1 edge, containing the
	// requesting sub-cliques.
	requests := make(map[int][]int) // F1 edge -> sub-clique ids
	for v, phi := range hp.phiOf {
		if phi >= 0 {
			requests[phi] = append(requests[phi], hp.subOf[v])
		}
	}
	var hedges [][]int
	hp.hyperEdge = nil
	keys := make([]int, 0, len(requests))
	for e := range requests {
		keys = append(keys, e)
	}
	sort.Ints(keys)
	for _, e := range keys {
		hedges = append(hedges, requests[e])
		hp.hyperEdge = append(hp.hyperEdge, e)
	}
	if len(hp.subVec) == 0 {
		hp.stats.TypeI = 0
		return nil // no C_HEG cliques; nothing to grab
	}
	h, err := heg.NewHypergraph(len(hp.subVec), hedges)
	if err != nil {
		return fmt.Errorf("core: building HEG instance: %w", err)
	}
	hp.hyper = h
	hp.stats.HypergraphRank = h.Rank()
	hp.stats.HypergraphMinDeg = h.MinDegree()

	// Lemma 11: δ_H must exceed the slack factor times r_H. (The brief
	// announcement's constants are tight; with integer sub-clique sizes
	// this needs floor(|C|/P) > 1.05·r_H, which holds for Δ >= ~85 at the
	// paper's ε = 1/63 and is checked here rather than assumed.)
	// h.MinDegree() already reflects the lost proposals of useless members.
	if float64(h.MinDegree()) <= HEGSlack*float64(h.Rank()) {
		return fmt.Errorf("core: Lemma 11 slack violated on instance: δ_H=%d vs r_H=%d",
			h.MinDegree(), h.Rank())
	}

	// Solve HEG on the virtual hypergraph network (sub-cliques and
	// requested edges are within 3 hops of each other).
	vnet := hp.net.Virtual(graph.Path(2), 3)
	grab, hst, err := heg.Solve(vnet, h)
	if err != nil {
		return fmt.Errorf("core: HEG: %w", err)
	}
	if err := heg.Verify(h, grab); err != nil {
		return fmt.Errorf("core: HEG solution invalid: %w", err)
	}
	if err := hp.net.Checkpoint("alg2/heg", &CkptHEG{H: h, Grab: grab}); err != nil {
		return err
	}
	hp.stats.HEG = hst

	// F2: for each grab, the unique requesting member v_e of the winning
	// sub-clique takes the edge {v_e, f(v_e)} oriented away from v_e
	// (Section 3.3, "Computing F2").
	for q, e := range grab {
		f1Idx := hp.hyperEdge[e]
		vE := -1
		for _, v := range hp.subVec[q] {
			if hp.phiOf[v] == f1Idx {
				vE = v
				break
			}
		}
		if vE == -1 {
			return fmt.Errorf("core: sub-clique %d grabbed edge it never requested", q)
		}
		head := hp.fOf[vE]
		if head == vE {
			// v_e owns the F1 edge: F2 keeps that edge, oriented out.
			e := hp.f1[f1Idx]
			head = e.U + e.V - vE
		}
		hp.f2 = append(hp.f2, DirEdge{Tail: vE, Head: head})
	}

	// F2 must be a matching (Lemma 12) with cross-clique edges only.
	usedBy := make(map[int]DirEdge)
	for _, de := range hp.f2 {
		if hp.hardOf[de.Tail] < 0 || hp.hardOf[de.Head] < 0 || hp.hardOf[de.Tail] == hp.hardOf[de.Head] {
			return fmt.Errorf("core: F2 edge %v does not cross hard cliques", de)
		}
		if !hp.g.HasEdge(de.Tail, de.Head) {
			return fmt.Errorf("core: F2 edge %v is not a graph edge", de)
		}
		for _, v := range [2]int{de.Tail, de.Head} {
			if prev, dup := usedBy[v]; dup {
				return fmt.Errorf("core: Lemma 12 violated: vertex %d in F2 edges %v and %v", v, prev, de)
			}
			usedBy[v] = de
		}
	}

	// Each C_HEG clique has exactly P outgoing edges (Type I).
	outCount := make(map[int]int)
	for _, de := range hp.f2 {
		outCount[hp.hardOf[de.Tail]]++
	}
	for ci := range hp.a.Cliques {
		if hp.inHEG[ci] && outCount[ci] != hp.p.Subcliques {
			return fmt.Errorf("core: clique %d has %d outgoing F2 edges, want %d",
				ci, outCount[ci], hp.p.Subcliques)
		}
	}
	hp.stats.F2Size = len(hp.f2)
	return nil
}

// phase2Sparsify applies the degree splitting to G_Q and discards all but
// two outgoing edges per clique (Steps 5-6, Lemma 13).
func (hp *hardPipeline) phase2Sparsify() error {
	done := hp.net.Phase("alg2/sparsify")
	defer done()
	hp.typeI = make([]bool, len(hp.a.Cliques))
	if len(hp.f2) == 0 {
		return nil
	}

	// Virtual multigraph G_Q: node 2c is Q_c^+ (tails), node 2c+1 is
	// Q_c^- (heads).
	qEdges := make([]graph.Edge, len(hp.f2))
	for i, de := range hp.f2 {
		qEdges[i] = graph.Edge{U: 2 * hp.hardOf[de.Tail], V: 2*hp.hardOf[de.Head] + 1}
	}
	part := make([]int, len(hp.f2))
	if hp.p.SplitLevels > 0 {
		vnet := hp.net.Virtual(graph.Path(2), 2)
		var err error
		part, err = split.Split(vnet, 2*len(hp.a.Cliques), qEdges, hp.p.SplitLevels, hp.p.SplitEps)
		if err != nil {
			return fmt.Errorf("core: phase 2 split: %w", err)
		}
	}
	if err := hp.net.Checkpoint("alg2/sparsify", &CkptSplit{
		N: 2 * len(hp.a.Cliques), Edges: qEdges, Part: part,
		Levels: hp.p.SplitLevels, Eps: hp.p.SplitEps,
	}); err != nil {
		return err
	}

	// Keep part 0; per clique keep only two outgoing edges (Step 6). The
	// paper leaves the choice arbitrary; we refine it with a local-search
	// balancing pass so the kept edges spread over target cliques — this
	// only strengthens the Lemma 13 incoming bound and lets the scaled-down
	// presets (fewer split levels) meet it too.
	byClique := make(map[int][]DirEdge)
	for i, de := range hp.f2 {
		if part[i] == 0 {
			byClique[hp.hardOf[de.Tail]] = append(byClique[hp.hardOf[de.Tail]], de)
		}
	}
	f3, typeI, err := hp.discardToTwo(byClique, hp.inHEG)
	if err != nil {
		return err
	}
	hp.f3, hp.typeI = f3, typeI

	// Lemma 13's incoming bound, after discarding.
	incoming := make(map[int]int)
	for _, de := range hp.f3 {
		incoming[hp.hardOf[de.Head]]++
	}
	bound := (float64(hp.delta) - 2*hp.p.Eps*float64(hp.delta) - 1) / 2
	for ci, cnt := range incoming {
		if float64(cnt) >= bound {
			return fmt.Errorf("core: Lemma 13 violated: clique %d has %d incoming F3 edges (bound %.1f)",
				ci, cnt, bound)
		}
	}
	hp.stats.F3Size = len(hp.f3)
	return nil
}

// discardToTwo keeps exactly two outgoing edges per eligible clique,
// chosen by an iterated local search that spreads the kept edges across
// target cliques (each iteration is one LOCAL exchange). The sum of squared
// incoming loads strictly decreases with every swap, so the search
// terminates.
func (hp *hardPipeline) discardToTwo(byClique map[int][]DirEdge, eligible []bool) ([]DirEdge, []bool, error) {
	typeI := make([]bool, len(hp.a.Cliques))
	kept := make(map[int][]int) // clique -> indices into byClique[ci] kept
	loads := make(map[int]int)  // clique -> incoming kept edges
	for ci := range hp.a.Cliques {
		if !eligible[ci] {
			continue
		}
		outs := byClique[ci]
		if len(outs) < 2 {
			return nil, nil, fmt.Errorf("core: Lemma 13 violated: clique %d has %d outgoing edges after splitting, want >= 2",
				ci, len(outs))
		}
		sort.Slice(outs, func(i, j int) bool { return outs[i].Tail < outs[j].Tail })
		byClique[ci] = outs
		kept[ci] = []int{0, 1}
		loads[hp.hardOf[outs[0].Head]]++
		loads[hp.hardOf[outs[1].Head]]++
		typeI[ci] = true
	}
	iters := 0
	for ; iters < 32; iters++ {
		changed := false
		for ci := range hp.a.Cliques {
			if !typeI[ci] {
				continue
			}
			outs := byClique[ci]
			for slot, idx := range kept[ci] {
				cur := hp.hardOf[outs[idx].Head]
				best, bestLoad := -1, loads[cur]
				for alt := range outs {
					if alt == kept[ci][0] || alt == kept[ci][1] {
						continue
					}
					tgt := hp.hardOf[outs[alt].Head]
					if loads[tgt]+1 < bestLoad {
						best, bestLoad = alt, loads[tgt]+1
					}
				}
				if best >= 0 {
					loads[cur]--
					loads[hp.hardOf[outs[best].Head]]++
					kept[ci][slot] = best
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	hp.net.Charge(2 * (iters + 1)) // one exchange per balancing iteration
	var f3 []DirEdge
	for ci := range hp.a.Cliques {
		if typeI[ci] {
			f3 = append(f3, byClique[ci][kept[ci][0]], byClique[ci][kept[ci][1]])
		}
	}
	return f3, typeI, nil
}

// phase3Triads forms one slack triad per Type I⁺ clique (Step 7, Lemma 15).
func (hp *hardPipeline) phase3Triads() error {
	done := hp.net.Phase("alg2/triads")
	defer done()
	hp.net.Charge(1)
	outs := make(map[int][]DirEdge)
	for _, de := range hp.f3 {
		outs[hp.hardOf[de.Tail]] = append(outs[hp.hardOf[de.Tail]], de)
	}
	used := make(map[int]Triad)
	pairPerClique := make(map[int]int)
	for ci := range hp.a.Cliques {
		if !hp.typeI[ci] {
			continue
		}
		es := outs[ci]
		if len(es) != 2 {
			return fmt.Errorf("core: Type I+ clique %d has %d outgoing F3 edges, want 2", ci, len(es))
		}
		e1, e2 := es[0], es[1]
		tr := Triad{Slack: e1.Tail, PairOut: e1.Head, PairIn: e2.Tail, Clique: ci}
		// Slack triad validity (Definition 14): both pair vertices neighbor
		// the slack vertex and are non-adjacent.
		if !hp.g.HasEdge(tr.Slack, tr.PairIn) || !hp.g.HasEdge(tr.Slack, tr.PairOut) {
			return fmt.Errorf("core: triad %+v: pair vertices not adjacent to slack vertex", tr)
		}
		if hp.g.HasEdge(tr.PairIn, tr.PairOut) {
			return fmt.Errorf("core: triad %+v: pair vertices adjacent (Lemma 9.3 violated?)", tr)
		}
		// Lemma 15(ii): vertex-disjointness.
		for _, v := range [3]int{tr.Slack, tr.PairIn, tr.PairOut} {
			if prev, dup := used[v]; dup {
				return fmt.Errorf("core: Lemma 15(ii) violated: vertex %d in triads %+v and %+v", v, prev, tr)
			}
			used[v] = tr
		}
		pairPerClique[hp.hardOf[tr.PairIn]]++
		pairPerClique[hp.hardOf[tr.PairOut]]++
		hp.triads = append(hp.triads, tr)
	}
	// Lemma 15(iii): slack-pair vertices per clique.
	bound := hp.p.MaxPairVertices(hp.delta)
	for ci, cnt := range pairPerClique {
		if float64(cnt) > bound {
			return fmt.Errorf("core: Lemma 15(iii) violated: clique %d hosts %d pair vertices (bound %.1f)",
				ci, cnt, bound)
		}
	}
	hp.stats.Triads = len(hp.triads)
	return hp.net.Checkpoint("alg2/triads", &CkptTriads{Triads: hp.triads})
}

// phase4APairs same-colors the slack pairs via the virtual conflict graph
// G_V (Step 8, Lemma 16).
func (hp *hardPipeline) phase4APairs() error {
	done := hp.net.Phase("alg2/pairs")
	defer done()
	if len(hp.triads) == 0 {
		return nil
	}
	b := graph.NewBuilder(len(hp.triads))
	owner := make(map[int]int) // vertex -> triad index
	for i, tr := range hp.triads {
		owner[tr.PairIn] = i
		owner[tr.PairOut] = i
	}
	for i, tr := range hp.triads {
		for _, v := range [2]int{tr.PairIn, tr.PairOut} {
			for _, w := range hp.g.Neighbors(v) {
				if j, ok := owner[int(w)]; ok && j > i {
					b.AddEdge(i, j)
				}
			}
		}
	}
	gv := b.MustBuild()
	hp.stats.PairGraphMaxDeg = gv.MaxDegree()
	palette := hp.delta - hp.spec.pairColorBase
	if gv.MaxDegree() > hp.delta-2 {
		return fmt.Errorf("core: Lemma 16 violated: G_V max degree %d > Δ-2 = %d",
			gv.MaxDegree(), hp.delta-2)
	}
	if gv.MaxDegree()+1 > palette {
		return fmt.Errorf("core: pair palette too small: G_V degree %d with %d colors",
			gv.MaxDegree(), palette)
	}
	vnet := hp.net.Virtual(gv, 3)
	inst := listcolor.Instance{Active: make([]bool, gv.N()), Lists: make([]coloring.Palette, gv.N())}
	// Each triad's list is [pairColorBase, Δ): the full prefix palette minus
	// the reserved low colors, built word-wide instead of bit by bit.
	reserved := coloring.FullPalette(hp.spec.pairColorBase)
	for i := range hp.triads {
		inst.Active[i] = true
		p := coloring.FullPalette(hp.delta)
		p.AndNot(reserved)
		inst.Lists[i] = p
	}
	pairColors := coloring.NewPartial(gv.N())
	if err := listcolor.Solve(vnet, inst, pairColors); err != nil {
		return fmt.Errorf("core: coloring slack pairs: %w", err)
	}
	for i, tr := range hp.triads {
		c := pairColors.Colors[i]
		hp.out.Colors[tr.PairIn] = c
		hp.out.Colors[tr.PairOut] = c
	}
	return hp.net.Checkpoint("alg2/pairs", &CkptColoring{C: hp.out, NumColors: hp.delta})
}

// phase4BRest colors the remaining hard vertices with two deg+1-list
// instances (Step 9, Lemma 17).
func (hp *hardPipeline) phase4BRest() error {
	done := hp.net.Phase("alg2/rest")
	defer done()
	g := hp.g

	// Anchors: the designated vertex per hard clique that stays uncolored
	// through instance 1 and provides slack to its clique-mates. Type I⁺
	// cliques use the slack vertex; the others use a member with an
	// uncolored neighbor outside the hard cliques.
	for _, tr := range hp.triads {
		hp.anchor[tr.Clique] = tr.Slack
	}
	for ci := range hp.a.Cliques {
		if !hp.hard[ci] || hp.anchor[ci] >= 0 {
			continue
		}
		for _, v := range hp.members(ci) {
			if hp.out.Colored(v) {
				continue
			}
			hasOutside := false
			for _, w := range g.Neighbors(v) {
				if hp.hardOf[w] < 0 && !hp.out.Colored(int(w)) {
					hasOutside = true
					break
				}
			}
			if hasOutside {
				hp.anchor[ci] = v
				break
			}
		}
		if hp.anchor[ci] < 0 {
			return fmt.Errorf("core: Type II clique %d has no anchor (no member with an uncolored outside neighbor)", ci)
		}
	}

	isAnchor := make(map[int]bool)
	for ci, v := range hp.anchor {
		if hp.hard[ci] && v >= 0 {
			isAnchor[v] = true
		}
	}

	// Instance 1: every uncolored hard vertex except the anchors.
	inst := listcolor.Instance{Active: make([]bool, g.N()), Lists: make([]coloring.Palette, g.N())}
	for v := 0; v < g.N(); v++ {
		if hp.hardOf[v] >= 0 && !hp.out.Colored(v) && !isAnchor[v] {
			inst.Active[v] = true
		}
	}
	hp.fillLists(&inst)
	if err := listcolor.Solve(hp.net, inst, hp.out); err != nil {
		return fmt.Errorf("core: Lemma 17 instance 1: %w", err)
	}

	// Instance 2: the anchors (slack vertices have two same-colored
	// neighbors; Type II anchors still have an uncolored outside neighbor).
	inst2 := listcolor.Instance{Active: make([]bool, g.N()), Lists: make([]coloring.Palette, g.N())}
	for v := range isAnchor {
		inst2.Active[v] = true
	}
	hp.fillLists(&inst2)
	if err := listcolor.Solve(hp.net, inst2, hp.out); err != nil {
		return fmt.Errorf("core: Lemma 17 instance 2: %w", err)
	}

	for v := 0; v < g.N(); v++ {
		if hp.hardOf[v] >= 0 && !hp.out.Colored(v) {
			return fmt.Errorf("core: hard vertex %d left uncolored after Algorithm 2", v)
		}
	}
	return hp.net.Checkpoint("alg2/rest", &CkptColoring{C: hp.out, NumColors: hp.delta})
}

func (hp *hardPipeline) fillLists(inst *listcolor.Instance) {
	for v := 0; v < hp.g.N(); v++ {
		if inst.Active[v] {
			coloring.AvailableInto(&inst.Lists[v], hp.g, hp.out, v, hp.delta)
		}
	}
}

// run executes all phases of Algorithm 2.
func (hp *hardPipeline) run() error {
	hp.stats.HardCliques = count(hp.hard)
	hp.stats.EasyCliques = len(hp.hard) - hp.stats.HardCliques
	if hp.stats.HardCliques == 0 {
		return nil
	}
	if err := hp.phase1Matching(); err != nil {
		return err
	}
	if err := hp.phase1HEG(); err != nil {
		return err
	}
	if err := hp.phase2Sparsify(); err != nil {
		return err
	}
	if err := hp.phase3Triads(); err != nil {
		return err
	}
	if err := hp.phase4APairs(); err != nil {
		return err
	}
	if err := hp.phase4BRest(); err != nil {
		return err
	}
	hp.stats.TypeI = count(hp.typeI)
	hp.stats.TypeII = hp.stats.HardCliques - hp.stats.TypeI
	return nil
}

func count(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}
