package core

import (
	"math/rand"
	"testing"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func BenchmarkColorDeterministic(b *testing.B) {
	g, _ := graph.HardCliqueBipartite(16, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ColorDeterministic(local.New(g), TestParams()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColorRandomized(b *testing.B) {
	g, _ := graph.HardCliqueBipartite(16, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := ColorRandomized(local.New(g), TestRandomizedParams(), rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColorSimpleDense(b *testing.B) {
	g, _ := graph.HardCliqueBipartite(16, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ColorSimpleDense(local.New(g), TestParams()); err != nil {
			b.Fatal(err)
		}
	}
}
