package core

import (
	"fmt"
	"sort"

	"deltacoloring/internal/acd"
	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
	"deltacoloring/internal/loophole"
	"deltacoloring/internal/rulingset"
)

// rulingSubgraphR is the ruling-set radius on the hard-clique graph H: a
// (3,2)-ruling set gives every hard clique a coordinator within 2 H-hops,
// so triad selection proceeds in at most 3 BFS waves from the set.
const rulingSubgraphR = 2

// ColorRuling implements the ruling-subgraph route to Δ-coloring (in the
// spirit of "Faster Distributed Δ-Coloring via Ruling Subgraphs",
// arXiv 2503.04320): instead of deriving the slack-triad candidates via
// the maximal-matching + hyperedge-grabbing + degree-splitting machinery
// of Algorithm 2, it computes a ruling set on the hard-clique graph H and
// lets each hard clique pick its two F3 edges in BFS-wave order from the
// ruling cliques, load-balancing the pair vertices directly against the
// Lemma 15(iii) bound. The downstream phases are shared with Algorithm 2
// verbatim (triads, pair coloring, anchored list coloring, Algorithm 3 for
// easy cliques), so every lemma-level invariant of the paper is still
// verified at runtime and the conformance harness checks the run through
// the same checkpoint artifacts. Cliques for which no valid triad can be
// selected fall back to the Type II anchor route.
func ColorRuling(net *local.Network, p Params) (*Result, error) {
	g := net.Graph()
	delta := g.MaxDegree()
	if err := p.Validate(delta); err != nil {
		return nil, err
	}
	res := &Result{Coloring: coloring.NewPartial(g.N())}
	res.Stats.N = g.N()
	res.Stats.Delta = delta
	if g.N() == 0 {
		return res, nil
	}
	if delta == 0 {
		return nil, fmt.Errorf("core: Δ = 0 graph has no colors to assign")
	}

	doneACD := net.Phase("ruling/acd")
	a, err := acd.Compute(net, p.Eps)
	if err == nil {
		err = net.Checkpoint("ruling/acd", &CkptACD{A: a})
	}
	doneACD()
	if err != nil {
		return nil, err
	}
	if !a.IsDense() {
		return nil, fmt.Errorf("%w: %d sparse vertices", ErrNotDense, a.SparseCount())
	}
	res.Stats.NumCliques = len(a.Cliques)
	for _, members := range a.Cliques {
		if len(members) == delta+1 && g.IsClique(members) {
			return nil, ErrBrooks
		}
	}

	doneCl := net.Phase("ruling/classify")
	cl := loophole.Classify(g, a)
	err = loophole.VerifyHard(g, a, cl)
	if err == nil {
		err = net.Checkpoint("ruling/classify", &CkptClassification{A: a, Cl: cl})
	}
	net.Charge(3)
	doneCl()
	if err != nil {
		return nil, err
	}

	spec := instanceSpec{
		hardLike: make([]bool, len(a.Cliques)),
		witness:  cl.Witness,
	}
	for ci := range a.Cliques {
		spec.hardLike[ci] = !cl.Easy[ci]
	}
	hp := newHardPipeline(net, a, spec, p, res.Coloring, &res.Stats)
	hp.stats.HardCliques = count(hp.hard)
	hp.stats.EasyCliques = len(hp.hard) - hp.stats.HardCliques

	if hp.stats.HardCliques > 0 {
		if err := hp.selectTriadsByRuling(); err != nil {
			return nil, err
		}
		if err := hp.phase3Triads(); err != nil {
			return nil, err
		}
		if err := hp.phase4APairs(); err != nil {
			return nil, err
		}
		if err := hp.phase4BRest(); err != nil {
			return nil, err
		}
		hp.stats.TypeI = count(hp.typeI)
		hp.stats.TypeII = hp.stats.HardCliques - hp.stats.TypeI
	}

	ec := &easyColorer{hp: hp}
	if err := ec.run(); err != nil {
		return nil, err
	}

	if err := coloring.VerifyComplete(g, res.Coloring, delta); err != nil {
		return nil, fmt.Errorf("core: final verification: %w", err)
	}
	if err := net.Checkpoint("final", &CkptColoring{C: res.Coloring, NumColors: delta, Complete: true}); err != nil {
		return nil, err
	}
	res.Rounds = net.Rounds()
	res.Spans = net.Spans()
	res.Frontier = net.FrontierStats()
	return res, nil
}

// selectTriadsByRuling replaces Algorithm 2's phases 1-2 (matching, HEG,
// splitting, discarding): it computes a ruling set on the hard-clique
// graph H, orders the hard cliques by BFS wave from the ruling cliques,
// and lets each clique greedily claim two cross-hard edges forming a valid
// slack triad — tails and the pair-out head globally unused, the slack and
// pair-in tails adjacent inside the clique, the pair non-adjacent, and
// both pair-hosting cliques under the Lemma 15(iii) load bound. The result
// populates hp.f3/hp.typeI exactly as phase2Sparsify would, so
// phase3Triads re-verifies Definition 14 and Lemma 15 on it unchanged.
func (hp *hardPipeline) selectTriadsByRuling() error {
	nc := len(hp.a.Cliques)

	// The hard-clique graph H: one node per almost clique, one edge per
	// pair of hard cliques joined by at least one E_hard edge. Parallel
	// cross edges collapse (unlike the simple-dense path, hardness alone
	// does not forbid them for almost cliques below size Δ).
	doneRS := hp.net.Phase("ruling/rulingset")
	b := graph.NewBuilder(nc)
	seen := make(map[graph.Edge]bool)
	for _, e := range hp.eHard {
		cu, cv := hp.hardOf[e.U], hp.hardOf[e.V]
		key := graph.Edge{U: cu, V: cv}
		if cu > cv {
			key = graph.Edge{U: cv, V: cu}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(key.U, key.V)
	}
	h, err := b.Build()
	if err != nil {
		doneRS()
		return fmt.Errorf("core: hard-clique graph: %w", err)
	}
	// One H round is simulated by clique-internal coordination (almost
	// cliques have diameter <= 2) plus one cross edge: dilation 3.
	vnet := hp.net.Virtual(h, 3)
	in, err := rulingset.RulingSet(vnet, rulingSubgraphR)
	if err == nil {
		err = hp.net.Checkpoint("ruling/rulingset", &CkptRulingSet{G: h, In: in, R: rulingSubgraphR})
	}
	doneRS()
	if err != nil {
		return fmt.Errorf("core: ruling subgraph: %w", err)
	}

	doneSel := hp.net.Phase("ruling/select")
	defer doneSel()

	// BFS waves on H from the ruling cliques; the (3,2)-ruling property
	// bounds the wave depth by the radius.
	wave := make([]int, nc)
	for ci := range wave {
		wave[ci] = -1
	}
	queue := make([]int, 0, nc)
	for ci := 0; ci < nc; ci++ {
		if in[ci] && hp.hard[ci] {
			wave[ci] = 0
			queue = append(queue, ci)
		}
	}
	maxWave := 0
	for head := 0; head < len(queue); head++ {
		ci := queue[head]
		for _, ncj := range h.Neighbors(ci) {
			cj := int(ncj)
			if wave[cj] < 0 {
				wave[cj] = wave[ci] + 1
				if wave[cj] > maxWave {
					maxWave = wave[cj]
				}
				queue = append(queue, cj)
			}
		}
	}
	order := make([]int, 0, nc)
	for ci := 0; ci < nc; ci++ {
		if hp.hard[ci] {
			order = append(order, ci)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		wi, wj := wave[order[i]], wave[order[j]]
		if wi != wj {
			return wi < wj
		}
		return order[i] < order[j]
	})

	// Outgoing E_hard candidates per clique, in deterministic order.
	cand := make([][]DirEdge, nc)
	for _, e := range hp.eHard {
		cand[hp.hardOf[e.U]] = append(cand[hp.hardOf[e.U]], DirEdge{Tail: e.U, Head: e.V})
		cand[hp.hardOf[e.V]] = append(cand[hp.hardOf[e.V]], DirEdge{Tail: e.V, Head: e.U})
	}
	for ci := range cand {
		es := cand[ci]
		sort.Slice(es, func(i, j int) bool {
			if es[i].Tail != es[j].Tail {
				return es[i].Tail < es[j].Tail
			}
			return es[i].Head < es[j].Head
		})
	}

	used := make([]bool, hp.g.N())
	pairLoad := make([]int, nc)
	bound := hp.p.MaxPairVertices(hp.delta)
	typeI := make([]bool, nc)
	var f3 []DirEdge
	for _, ci := range order {
		e1, e2, ok := hp.pickTriadEdges(cand[ci], used, pairLoad, bound, ci)
		if !ok {
			continue // Type II: phase4BRest anchors the clique instead
		}
		typeI[ci] = true
		used[e1.Tail], used[e2.Tail], used[e1.Head] = true, true, true
		pairLoad[ci]++                 // PairIn = e2.Tail lives in ci
		pairLoad[hp.hardOf[e1.Head]]++ // PairOut lives in the target clique
		f3 = append(f3, e1, e2)
	}
	hp.f3, hp.typeI = f3, typeI
	hp.stats.F3Size = len(f3)
	// One exchange per wave sweep to learn the neighbors' claims, plus the
	// final announcement round.
	hp.net.Charge(2*(maxWave+1) + 1)
	return nil
}

// pickTriadEdges picks the (slack -> pairOut, pairIn -> ·) edge pair for
// clique ci minimizing the target clique's pair load, or reports that no
// valid pair exists under the current claims.
func (hp *hardPipeline) pickTriadEdges(cands []DirEdge, used []bool, pairLoad []int, bound float64, ci int) (DirEdge, DirEdge, bool) {
	var best1, best2 DirEdge
	bestLoad := -1
	if float64(pairLoad[ci]+1) > bound {
		return best1, best2, false
	}
	for _, e1 := range cands {
		if used[e1.Tail] || used[e1.Head] {
			continue
		}
		tgt := hp.hardOf[e1.Head]
		if float64(pairLoad[tgt]+1) > bound {
			continue
		}
		if bestLoad >= 0 && pairLoad[tgt] >= bestLoad {
			continue
		}
		for _, e2 := range cands {
			if e2.Tail == e1.Tail || used[e2.Tail] {
				continue
			}
			// Definition 14: both pair vertices neighbor the slack vertex
			// and are mutually non-adjacent.
			if !hp.g.HasEdge(e1.Tail, e2.Tail) || hp.g.HasEdge(e2.Tail, e1.Head) {
				continue
			}
			best1, best2, bestLoad = e1, e2, pairLoad[tgt]
			break
		}
	}
	if bestLoad < 0 {
		return best1, best2, false
	}
	return best1, best2, true
}
