package core

// This test exercises the f(v) != v branch of the Section 3.3 proposal
// construction: a usable vertex without an incident F1 edge proposes to
// grab the matched edge of its minimum-ID external hard neighbor. On valid
// hard instances with |C| = Δ this never happens (E_hard is a perfect
// matching), and genuinely hard cliques with e_C >= 2 require girth-8
// super-graphs far beyond test scale — so the branch is driven with a
// hand-built hard-like instance that satisfies all the invariants
// phase1HEG checks (Lemma 10 distinctness, Lemma 11 slack, F2 matching)
// without going through the classifier.

import (
	"testing"

	"deltacoloring/internal/acd"
	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
	"deltacoloring/internal/loophole"
)

// buildFProposalInstance creates 4 cliques of K12 in a ring, joined by 5
// disjoint matching edges per adjacent pair, plus one "trigger" edge that
// gives one vertex two external edges — forcing the maximal matching to
// leave one of its endpoints unmatched.
func buildFProposalInstance(t *testing.T) (*graph.Graph, *acd.ACD, int) {
	t.Helper()
	const k, size = 4, 12
	b := graph.NewBuilder(k * size)
	at := func(c, i int) int { return c*size + i }
	for c := 0; c < k; c++ {
		for u := 0; u < size; u++ {
			for v := u + 1; v < size; v++ {
				b.AddEdge(at(c, u), at(c, v))
			}
		}
	}
	// Ring bundles: clique c's vertices 0..4 match to clique (c+1)'s
	// vertices 5..9.
	for c := 0; c < k; c++ {
		next := (c + 1) % k
		for j := 0; j < 5; j++ {
			b.AddEdge(at(c, j), at(next, 5+j))
		}
	}
	// Trigger: clique 0's bare vertex 10 also points at clique 1's vertex
	// 0 (which already has its own bundle edge into clique 2). Vertex
	// at(1,0) now has two external edges, so the maximal matching on
	// E_hard must leave either at(0,10) or at(2,5) unmatched... at(1,0)'s
	// edges are {at(1,0), at(2,5)} (bundle) and {at(0,10), at(1,0)}
	// (trigger); whichever loses triggers f(v) != v.
	trigger := at(0, 10)
	b.AddEdge(trigger, at(1, 0))
	g := b.MustBuild()

	cliqueOf := make([]int, g.N())
	cliques := make([][]int, k)
	for v := range cliqueOf {
		cliqueOf[v] = v / size
		cliques[v/size] = append(cliques[v/size], v)
	}
	a := &acd.ACD{Eps: 0.05, Delta: g.MaxDegree(), CliqueOf: cliqueOf, Cliques: cliques}
	return g, a, trigger
}

func TestPhase1HEGIndirectProposal(t *testing.T) {
	g, a, trigger := buildFProposalInstance(t)
	net := local.New(g)
	spec := instanceSpec{
		hardLike:  []bool{true, true, true, true},
		witness:   make([]*loophole.Loophole, 4),
		extraLoss: 2, // cliques have up to two members without external hard neighbors
	}
	p := Params{Eps: 0.05, Subcliques: 2, SplitLevels: 0, SplitEps: 0.1, RulingR: 6, Layers: 30}
	if err := p.Validate(g.MaxDegree()); err != nil {
		t.Fatalf("params: %v", err)
	}
	out := coloring.NewPartial(g.N())
	var st Stats
	hp := newHardPipeline(net, a, spec, p, out, &st)
	for ci := 0; ci < 4; ci++ {
		if !hp.inHEG[ci] {
			t.Fatalf("clique %d not in C_HEG (extraLoss should cover bare members)", ci)
		}
	}
	if err := hp.phase1Matching(); err != nil {
		t.Fatal(err)
	}
	if err := hp.phase1HEG(); err != nil {
		t.Fatal(err)
	}
	// The trigger structure guarantees some usable vertex proposed via a
	// neighbor: find it.
	indirect := 0
	for v, f := range hp.fOf {
		if f >= 0 && f != v {
			indirect++
		}
	}
	if indirect == 0 {
		t.Fatalf("no indirect f(v) proposals; trigger vertex %d has f=%d f1At=%d",
			trigger, hp.fOf[trigger], hp.f1At[trigger])
	}
	// The standard invariants must still hold.
	if st.HypergraphRank < 3 {
		t.Fatalf("rank = %d; the triple-requested trigger edge should give rank >= 3", st.HypergraphRank)
	}
	if len(hp.f2) != 4*p.Subcliques {
		t.Fatalf("F2 = %d edges, want %d", len(hp.f2), 4*p.Subcliques)
	}
}
