package core

import (
	"deltacoloring/internal/acd"
	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/heg"
	"deltacoloring/internal/loophole"
	"deltacoloring/internal/sinkless"
)

// Checkpoint artifacts: the intermediate state the pipelines publish to
// local.Network.Checkpoint at their span boundaries, so an installed check
// hook (internal/invariant's Harness) can validate mid-run guarantees
// against the paper's lemmas instead of only seeing the final coloring.
//
// Artifacts wrap live pipeline state — the hook runs synchronously on the
// algorithm's goroutine, so reading (but not retaining) the slices is safe.
// With no hook installed, Checkpoint is a no-op and the wrappers cost one
// small allocation per phase per run.

// CkptACD is the almost-clique decomposition of Algorithm 1 line 1
// (phases alg1/acd, alg4/acd, simple/acd). Invariant: acd.(*ACD).Verify.
type CkptACD struct {
	A *acd.ACD
}

// CkptClassification is the hard/easy clique classification with loophole
// witnesses (phases alg1/classify, alg4/classify, simple/classify).
// Invariant: loophole.VerifyHard (Lemma 9).
type CkptClassification struct {
	A  *acd.ACD
	Cl *loophole.Classification
}

// CkptMatching is the maximal matching F1 on E_hard (phase alg2/matching).
// Invariant: matching.Verify (Step 1).
type CkptMatching struct {
	Matched []graph.Edge
	Within  []graph.Edge
}

// CkptHEG is the solved hypergraph-edge-grabbing instance (phase alg2/heg).
// Invariant: heg.Verify (Section 3.3).
type CkptHEG struct {
	H    *heg.Hypergraph
	Grab []int
}

// CkptSplit is the degree splitting of the virtual multigraph G_Q
// (phase alg2/sparsify). Invariant: split.VerifyParts (Corollary 22); with
// Levels == 0 the single trivial part always satisfies the band.
type CkptSplit struct {
	N      int
	Edges  []graph.Edge
	Part   []int
	Levels int
	Eps    float64
}

// CkptTriads is the slack-triad selection (phases alg2/triads,
// simple/triads). Invariant: Definition 14 plus Lemma 15(ii) disjointness.
type CkptTriads struct {
	Triads []Triad
}

// CkptColoring is a snapshot of the (partial or complete) coloring over the
// real graph (phases alg2/pairs, alg2/rest, alg3/layers, alg4/preshatter,
// alg4/happylayers, final). Invariants: coloring.VerifyProper, and
// coloring.VerifyComplete when Complete is set.
type CkptColoring struct {
	C         *coloring.Partial
	NumColors int
	Complete  bool
}

// CkptRulingSet is the ruling set over the virtual loophole graph G_L
// (phase alg3/rulingset). Invariant: rulingset.VerifyRulingSet at radius R.
type CkptRulingSet struct {
	G  *graph.Graph
	In []bool
	R  int
}

// CkptOrientation is the k-out orientation of the virtual clique graph H
// (phase simple/orientation). Invariant: sinkless.VerifyKOut.
type CkptOrientation struct {
	G *graph.Graph
	O *sinkless.Orientation
	K int
}
