package core

import (
	"fmt"

	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/listcolor"
	"deltacoloring/internal/loophole"
	"deltacoloring/internal/rulingset"
)

// easyColorer implements Algorithm 3: coloring the vertices of easy almost
// cliques and the remaining loophole vertices.
//
//  1. Each easy clique's witness loophole "votes" (line 1; one witness per
//     clique suffices for the coverage argument of Lemma 20).
//  2. The virtual loophole graph G_L joins loopholes that intersect or are
//     adjacent (line 2); a 6-ruling set is computed on it (line 3).
//  3. BFS from the ruling-set loopholes layers the remaining uncolored
//     vertices (line 4); layers are colored outside-in with one deg+1-list
//     instance each (lines 5-7) — every vertex has slack from an uncolored
//     neighbor one layer closer to the loophole.
//  4. The ruling-set loopholes themselves are colored by brute force
//     (line 8), which succeeds by their deg-list colorability (Lemma 7).
type easyColorer struct {
	hp *hardPipeline
}

func (ec *easyColorer) run() error {
	hp := ec.hp
	g, net, out := hp.g, hp.net, hp.out
	delta := hp.delta

	// Voted loopholes: the witness of each easy(-like) clique that
	// intersects the instance.
	var voted []*loophole.Loophole
	for ci := range hp.a.Cliques {
		if hp.spec.hardLike[ci] || len(hp.members(ci)) == 0 {
			continue
		}
		if hp.spec.witness[ci] == nil {
			return fmt.Errorf("core: easy clique %d has no witness loophole", ci)
		}
		voted = append(voted, hp.spec.witness[ci])
	}
	uncoloredCount := 0
	for v := 0; v < g.N(); v++ {
		if hp.isActive(v) && !out.Colored(v) {
			uncoloredCount++
		}
	}
	if uncoloredCount == 0 {
		return nil
	}
	if len(voted) == 0 {
		return fmt.Errorf("core: %d uncolored vertices but no loopholes to anchor them", uncoloredCount)
	}

	done := net.Phase("alg3/rulingset")
	// G_L: loopholes adjacent when they intersect or touch via an edge.
	lg, err := loopholeGraph(g, voted)
	if err != nil {
		done()
		return err
	}
	// One G_L round is simulated by loophole diameter (3) + 1 real rounds.
	vnet := net.Virtual(lg, 4)
	ruling, err := rulingset.RulingSet(vnet, hp.p.RulingR)
	if err == nil {
		err = net.Checkpoint("alg3/rulingset", &CkptRulingSet{G: lg, In: ruling, R: hp.p.RulingR})
	}
	done()
	if err != nil {
		return fmt.Errorf("core: loophole ruling set: %w", err)
	}
	var anchors []*loophole.Loophole
	for i, in := range ruling {
		if in {
			anchors = append(anchors, voted[i])
		}
	}

	// BFS layering from the anchor loopholes over uncolored vertices.
	done = net.Phase("alg3/layers")
	defer done()
	layer := make([]int, g.N())
	for v := range layer {
		layer[v] = -1
	}
	var frontier []int
	for _, l := range anchors {
		for _, v := range l.Verts {
			if out.Colored(v) {
				return fmt.Errorf("core: anchor loophole vertex %d already colored", v)
			}
			if layer[v] == -1 {
				layer[v] = 0
				frontier = append(frontier, v)
			}
		}
	}
	maxLayer := 0
	for depth := 1; depth <= hp.p.Layers && len(frontier) > 0; depth++ {
		var next []int
		for _, v := range frontier {
			for _, nw := range g.Neighbors(v) {
				w := int(nw)
				if layer[w] == -1 && hp.isActive(w) && !out.Colored(w) {
					layer[w] = depth
					next = append(next, w)
				}
			}
		}
		if len(next) > 0 {
			maxLayer = depth
		}
		frontier = next
	}
	net.Charge(hp.p.Layers)
	for v := 0; v < g.N(); v++ {
		if hp.isActive(v) && !out.Colored(v) && layer[v] == -1 {
			return fmt.Errorf("core: Lemma 20 coverage violated: uncolored vertex %d beyond %d layers of every anchor loophole",
				v, hp.p.Layers)
		}
	}
	hp.stats.Layers = maxLayer

	// Color layers outside-in; every layer-i vertex has an uncolored
	// neighbor in layer i-1 (its BFS parent), hence slack.
	for depth := maxLayer; depth >= 1; depth-- {
		inst := listcolor.Instance{Active: make([]bool, g.N()), Lists: make([]coloring.Palette, g.N())}
		any := false
		for v := 0; v < g.N(); v++ {
			if layer[v] == depth {
				inst.Active[v] = true
				coloring.AvailableInto(&inst.Lists[v], g, out, v, delta)
				any = true
			}
		}
		if !any {
			continue
		}
		if err := listcolor.Solve(net, inst, out); err != nil {
			return fmt.Errorf("core: layer %d: %w", depth, err)
		}
	}

	// Brute-force the anchor loopholes (constant diameter, constant
	// rounds; anchors are pairwise non-adjacent so they complete
	// independently in parallel).
	net.Charge(4)
	for _, l := range anchors {
		if err := loophole.Complete(g, out, l, delta); err != nil {
			return fmt.Errorf("core: completing anchor loophole: %w", err)
		}
	}
	for v := 0; v < g.N(); v++ {
		if hp.isActive(v) && !out.Colored(v) {
			return fmt.Errorf("core: vertex %d uncolored after Algorithm 3", v)
		}
	}
	return net.Checkpoint("alg3/layers", &CkptColoring{C: out, NumColors: delta})
}

// loopholeGraph builds G_L: one node per voted loophole, an edge when two
// loopholes share a vertex or are joined by a graph edge.
func loopholeGraph(g *graph.Graph, voted []*loophole.Loophole) (*graph.Graph, error) {
	b := graph.NewBuilder(len(voted))
	byVertex := map[int][]int{}
	for i, l := range voted {
		for _, v := range l.Verts {
			byVertex[v] = append(byVertex[v], i)
		}
	}
	addPair := func(i, j int) {
		if i != j {
			if i > j {
				i, j = j, i
			}
			b.AddEdge(i, j)
		}
	}
	for _, ls := range byVertex {
		for i := 0; i < len(ls); i++ {
			for j := i + 1; j < len(ls); j++ {
				addPair(ls[i], ls[j])
			}
		}
	}
	for i, l := range voted {
		for _, v := range l.Verts {
			for _, w := range g.Neighbors(v) {
				for _, j := range byVertex[int(w)] {
					addPair(i, j)
				}
			}
		}
	}
	return b.Build()
}
