package core

import (
	"fmt"

	"deltacoloring/internal/acd"
	"deltacoloring/internal/coloring"
	"deltacoloring/internal/heg"
	"deltacoloring/internal/local"
	"deltacoloring/internal/loophole"
)

// Stats reports structural and algorithmic measurements of one run; the
// experiment harness consumes these.
type Stats struct {
	N, Delta    int
	NumCliques  int
	HardCliques int
	EasyCliques int
	TypeI       int
	TypeII      int
	F1Size      int
	F2Size      int
	F3Size      int
	Triads      int
	// PairGraphMaxDeg is the maximum degree of the slack-pair conflict
	// graph G_V (Lemma 16 bounds it by Δ-2).
	PairGraphMaxDeg int
	// HypergraphRank and HypergraphMinDeg describe the HEG instance
	// (Lemma 11: minDeg > 1.05 * rank).
	HypergraphRank   int
	HypergraphMinDeg int
	HEG              heg.Stats
	// Layers is the deepest BFS layer used by Algorithm 3.
	Layers int
}

// Result is the outcome of a Δ-coloring run.
type Result struct {
	// Coloring is a complete proper coloring with colors in [0, Δ).
	Coloring *coloring.Partial
	// Rounds is the total LOCAL rounds charged.
	Rounds int
	// Spans is the per-phase round breakdown.
	Spans []local.Span
	// Frontier aggregates the engine's activation accounting (sparse vs
	// dense rounds, evaluations performed vs skipped).
	Frontier local.FrontierStats
	// Stats carries structural measurements.
	Stats Stats
}

// ColorDeterministic runs Theorem 1's deterministic Δ-coloring algorithm
// (Algorithm 1) on net's graph, which must be dense (Definition 4 at
// p.Eps) and contain no (Δ+1)-clique. Every lemma-level invariant is
// verified during the run; violations surface as errors rather than bad
// colorings.
func ColorDeterministic(net *local.Network, p Params) (*Result, error) {
	g := net.Graph()
	delta := g.MaxDegree()
	if err := p.Validate(delta); err != nil {
		return nil, err
	}
	res := &Result{Coloring: coloring.NewPartial(g.N())}
	res.Stats.N = g.N()
	res.Stats.Delta = delta
	if g.N() == 0 {
		return res, nil
	}
	if delta == 0 {
		// Isolated vertices: Δ-coloring needs at least one color; Δ = 0
		// means the empty palette.
		return nil, fmt.Errorf("core: Δ = 0 graph has no colors to assign")
	}

	// Algorithm 1, line 1: the ACD.
	doneACD := net.Phase("alg1/acd")
	a, err := acd.Compute(net, p.Eps)
	if err == nil {
		err = net.Checkpoint("alg1/acd", &CkptACD{A: a})
	}
	doneACD()
	if err != nil {
		return nil, err
	}
	if !a.IsDense() {
		return nil, fmt.Errorf("%w: %d sparse vertices", ErrNotDense, a.SparseCount())
	}
	res.Stats.NumCliques = len(a.Cliques)

	// Brooks exception: a (Δ+1)-clique admits no Δ-coloring.
	for _, members := range a.Cliques {
		if len(members) == delta+1 && g.IsClique(members) {
			return nil, ErrBrooks
		}
	}

	// Hard/easy classification (Definition 8) with the Lemma 9 safety net.
	doneCl := net.Phase("alg1/classify")
	cl := loophole.Classify(g, a)
	err = loophole.VerifyHard(g, a, cl)
	if err == nil {
		err = net.Checkpoint("alg1/classify", &CkptClassification{A: a, Cl: cl})
	}
	net.Charge(3) // loophole detection inspects radius-3 balls
	doneCl()
	if err != nil {
		return nil, err
	}

	// Algorithm 1, line 2: color hard cliques (Algorithm 2).
	spec := instanceSpec{
		hardLike: make([]bool, len(a.Cliques)),
		witness:  cl.Witness,
	}
	for ci := range a.Cliques {
		spec.hardLike[ci] = !cl.Easy[ci]
	}
	hp := newHardPipeline(net, a, spec, p, res.Coloring, &res.Stats)
	if err := hp.run(); err != nil {
		return nil, err
	}

	// Algorithm 1, line 3: color easy cliques and loopholes (Algorithm 3).
	ec := &easyColorer{hp: hp}
	if err := ec.run(); err != nil {
		return nil, err
	}

	if err := coloring.VerifyComplete(g, res.Coloring, delta); err != nil {
		return nil, fmt.Errorf("core: final verification: %w", err)
	}
	if err := net.Checkpoint("final", &CkptColoring{C: res.Coloring, NumColors: delta, Complete: true}); err != nil {
		return nil, err
	}
	res.Rounds = net.Rounds()
	res.Spans = net.Spans()
	res.Frontier = net.FrontierStats()
	return res, nil
}

// TestParams returns a scaled-down parameterization for graphs with
// moderate Δ (around 16-32), where the paper's ε = 1/63 constants are
// unsatisfiable. The runtime invariant checks still guard every lemma, so
// a successful run remains a machine-checked certificate; only the
// worst-case constant guarantees of Lemmas 11/13 are weakened. See
// DESIGN.md ("parameter presets").
func TestParams() Params {
	return Params{
		Eps:         1.0 / 16.0,
		Subcliques:  4,
		SplitLevels: 0,
		SplitEps:    1.0 / 16.0,
		RulingR:     DefaultRulingR,
		Layers:      DefaultLayers,
	}
}
