package core

import (
	"testing"

	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func TestSimpleDenseColorsHardFamily(t *testing.T) {
	g, _ := graph.HardCliqueBipartite(16, 16)
	net := local.New(g)
	res, err := ColorSimpleDense(net, TestParams())
	if err != nil {
		t.Fatalf("ColorSimpleDense: %v", err)
	}
	if err := coloring.VerifyComplete(g, res.Coloring, g.MaxDegree()); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Triads != 32 {
		t.Fatalf("triads = %d, want 32", res.Stats.Triads)
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds charged")
	}
}

func TestSimpleDenseMatchesGeneralPipeline(t *testing.T) {
	g, _ := graph.HardCliqueBipartite(24, 16)
	simple, err := ColorSimpleDense(local.New(g), TestParams())
	if err != nil {
		t.Fatalf("simple: %v", err)
	}
	general, err := ColorDeterministic(local.New(g), TestParams())
	if err != nil {
		t.Fatalf("general: %v", err)
	}
	for _, res := range []*Result{simple, general} {
		if err := coloring.VerifyComplete(g, res.Coloring, g.MaxDegree()); err != nil {
			t.Fatal(err)
		}
	}
	// Both must form one triad per clique; the simple path skips the
	// matching+HEG phases entirely.
	if simple.Stats.Triads != general.Stats.Triads {
		t.Fatalf("triads differ: %d vs %d", simple.Stats.Triads, general.Stats.Triads)
	}
	if simple.Stats.F1Size != 0 || simple.Stats.F2Size != 0 {
		t.Fatal("simple path should not run the matching/HEG phases")
	}
}

func TestSimpleDenseRejectsEasyCliques(t *testing.T) {
	g, _ := graph.EasyCliqueRing(8, 16)
	if _, err := ColorSimpleDense(local.New(g), TestParams()); err == nil {
		t.Fatal("accepted easy cliques")
	}
	mixed, _ := graph.HardWithEasyPatch(16, 16)
	if _, err := ColorSimpleDense(local.New(mixed), TestParams()); err == nil {
		t.Fatal("accepted mixed instance")
	}
}

func TestSimpleDenseRejectsSparse(t *testing.T) {
	g := graph.Torus(8, 8)
	if _, err := ColorSimpleDense(local.New(g), TestParams()); err == nil {
		t.Fatal("accepted sparse graph")
	}
}

func TestSimpleDenseRejectsSmallDelta(t *testing.T) {
	g := graph.Complete(4)
	if _, err := ColorSimpleDense(local.New(g), TestParams()); err == nil {
		t.Fatal("accepted Δ < 6")
	}
}
