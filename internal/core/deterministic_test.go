package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"deltacoloring/internal/acd"
	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
	"deltacoloring/internal/loophole"
)

func requireColoring(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	if err := coloring.VerifyComplete(g, res.Coloring, g.MaxDegree()); err != nil {
		t.Fatalf("invalid Δ-coloring: %v", err)
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds charged")
	}
}

func TestDeterministicHardCliqueBipartite(t *testing.T) {
	g, _ := graph.HardCliqueBipartite(16, 16)
	net := local.New(g)
	res, err := ColorDeterministic(net, TestParams())
	if err != nil {
		t.Fatalf("ColorDeterministic: %v", err)
	}
	requireColoring(t, g, res)
	if res.Stats.HardCliques != 32 || res.Stats.EasyCliques != 0 {
		t.Fatalf("stats: %+v", res.Stats)
	}
	if res.Stats.TypeI != 32 {
		t.Fatalf("TypeI = %d, want 32", res.Stats.TypeI)
	}
	if res.Stats.Triads != 32 {
		t.Fatalf("Triads = %d, want 32", res.Stats.Triads)
	}
	if res.Stats.PairGraphMaxDeg > g.MaxDegree()-2 {
		t.Fatalf("Lemma 16: G_V degree %d > Δ-2", res.Stats.PairGraphMaxDeg)
	}
}

func TestDeterministicEasyCliqueRing(t *testing.T) {
	g, _ := graph.EasyCliqueRing(8, 16)
	res, err := ColorDeterministic(local.New(g), TestParams())
	if err != nil {
		t.Fatalf("ColorDeterministic: %v", err)
	}
	requireColoring(t, g, res)
	if res.Stats.HardCliques != 0 || res.Stats.EasyCliques != 8 {
		t.Fatalf("stats: %+v", res.Stats)
	}
}

func TestDeterministicMixedHardEasy(t *testing.T) {
	g, _ := graph.HardWithEasyPatch(16, 16)
	res, err := ColorDeterministic(local.New(g), TestParams())
	if err != nil {
		t.Fatalf("ColorDeterministic: %v", err)
	}
	requireColoring(t, g, res)
	if res.Stats.EasyCliques != 4 {
		t.Fatalf("easy cliques = %d, want 4", res.Stats.EasyCliques)
	}
	if res.Stats.HardCliques != 28 {
		t.Fatalf("hard cliques = %d, want 28", res.Stats.HardCliques)
	}
}

func TestDeterministicPermutedIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base, _ := graph.HardCliqueBipartite(16, 16)
	g := graph.PermuteIDs(base, rng)
	res, err := ColorDeterministic(local.New(g), TestParams())
	if err != nil {
		t.Fatalf("ColorDeterministic: %v", err)
	}
	requireColoring(t, g, res)
}

func TestDeterministicBrooksException(t *testing.T) {
	// Disjoint K_17 components: Δ = 16, each component is a (Δ+1)-clique —
	// the Brooks exception, no Δ-coloring exists.
	g := graph.Union(graph.Complete(17), graph.Complete(17))
	res, err := ColorDeterministic(local.New(g), TestParams())
	if err == nil {
		t.Fatalf("expected Brooks exception, got coloring with %d rounds", res.Rounds)
	}
	if !errors.Is(err, ErrBrooks) {
		t.Fatalf("expected ErrBrooks, got %v", err)
	}
}

func TestDeterministicNearCliqueComponents(t *testing.T) {
	// K_17 minus one edge has Δ = 16 and no (Δ+1)-clique: 16-colorable
	// (the two non-adjacent vertices share a color). Two such components
	// exercise Algorithm 3 on disconnected loophole graphs.
	k := func() *graph.Graph {
		return graph.RemoveEdges(graph.Complete(17), []graph.Edge{{U: 0, V: 1}})
	}
	g := graph.Union(k(), k())
	res, err := ColorDeterministic(local.New(g), TestParams())
	if err != nil {
		t.Fatalf("ColorDeterministic: %v", err)
	}
	requireColoring(t, g, res)
}

func TestDeterministicRejectsSparseGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, g := range []*graph.Graph{
		graph.Cycle(30),
		graph.RandomTree(50, rng),
		graph.Torus(5, 5),
	} {
		_, err := ColorDeterministic(local.New(g), TestParams())
		if !errors.Is(err, ErrNotDense) {
			t.Fatalf("%v: expected ErrNotDense, got %v", g, err)
		}
	}
}

func TestDeterministicRejectsDeltaZero(t *testing.T) {
	g := graph.NewBuilder(3).MustBuild()
	if _, err := ColorDeterministic(local.New(g), TestParams()); err == nil {
		t.Fatal("accepted edgeless graph")
	}
}

func TestDeterministicEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	res, err := ColorDeterministic(local.New(g), TestParams())
	if err != nil || res.Stats.N != 0 {
		t.Fatalf("empty graph: %v %v", res, err)
	}
}

func TestParamsValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(126); err != nil {
		t.Fatalf("default params invalid at Δ=126: %v", err)
	}
	if err := TestParams().Validate(16); err != nil {
		t.Fatalf("test params invalid at Δ=16: %v", err)
	}
	bad := p
	bad.Eps = 0
	if bad.Validate(126) == nil {
		t.Fatal("accepted eps=0")
	}
	bad = p
	bad.Subcliques = 0
	if bad.Validate(126) == nil {
		t.Fatal("accepted 0 sub-cliques")
	}
	bad = p
	bad.Layers = 1
	if bad.Validate(126) == nil {
		t.Fatal("accepted layers < ruling radius")
	}
	// Lemma 11 slack: too many sub-cliques starves the proposals.
	bad = p
	bad.Subcliques = 1000
	if bad.Validate(126) == nil {
		t.Fatal("accepted starved sub-cliques")
	}
}

// Phase-level test: the pipeline intermediates satisfy the lemmas on the
// flagship hard instance.
func TestHardPipelinePhases(t *testing.T) {
	g, _ := graph.HardCliqueBipartite(16, 16)
	net := local.New(g)
	a, err := acd.Compute(net, TestParams().Eps)
	if err != nil {
		t.Fatal(err)
	}
	cl := loophole.Classify(g, a)
	out := coloring.NewPartial(g.N())
	var st Stats
	spec := instanceSpec{hardLike: make([]bool, len(a.Cliques)), witness: cl.Witness}
	for ci := range a.Cliques {
		spec.hardLike[ci] = !cl.Easy[ci]
	}
	hp := newHardPipeline(net, a, spec, TestParams(), out, &st)

	if got := count(hp.inHEG); got != 32 {
		t.Fatalf("C_HEG size = %d, want 32", got)
	}
	// Every vertex has exactly one external edge; E_hard is the perfect
	// matching between cliques.
	if len(hp.eHard) != g.N()/2 {
		t.Fatalf("E_hard = %d edges, want %d", len(hp.eHard), g.N()/2)
	}
	if err := hp.phase1Matching(); err != nil {
		t.Fatal(err)
	}
	// E_hard is itself a perfect matching, so F1 = E_hard.
	if len(hp.f1) != len(hp.eHard) {
		t.Fatalf("F1 = %d edges, want %d", len(hp.f1), len(hp.eHard))
	}
	if err := hp.phase1HEG(); err != nil {
		t.Fatal(err)
	}
	if st.HypergraphRank != 2 {
		t.Fatalf("rank = %d, want 2 (e_C = 1 instance)", st.HypergraphRank)
	}
	if st.HypergraphMinDeg != 4 {
		t.Fatalf("min degree = %d, want 4 (16/4 sub-cliques)", st.HypergraphMinDeg)
	}
	if len(hp.f2) != 32*4 {
		t.Fatalf("F2 = %d, want 128 (4 per clique)", len(hp.f2))
	}
	if err := hp.phase2Sparsify(); err != nil {
		t.Fatal(err)
	}
	if len(hp.f3) != 32*2 {
		t.Fatalf("F3 = %d, want 64", len(hp.f3))
	}
	if err := hp.phase3Triads(); err != nil {
		t.Fatal(err)
	}
	if len(hp.triads) != 32 {
		t.Fatalf("triads = %d, want 32", len(hp.triads))
	}
	seen := map[int]bool{}
	for _, tr := range hp.triads {
		for _, v := range [3]int{tr.Slack, tr.PairIn, tr.PairOut} {
			if seen[v] {
				t.Fatalf("triads overlap at vertex %d", v)
			}
			seen[v] = true
		}
		if g.HasEdge(tr.PairIn, tr.PairOut) {
			t.Fatal("slack pair adjacent")
		}
	}
	if err := hp.phase4APairs(); err != nil {
		t.Fatal(err)
	}
	for _, tr := range hp.triads {
		if out.Colors[tr.PairIn] != out.Colors[tr.PairOut] || out.Colors[tr.PairIn] == coloring.None {
			t.Fatal("slack pair not same-colored")
		}
	}
	if err := coloring.VerifyProper(g, out, g.MaxDegree()); err != nil {
		t.Fatalf("after pairs: %v", err)
	}
	if err := hp.phase4BRest(); err != nil {
		t.Fatal(err)
	}
	if err := coloring.VerifyComplete(g, out, g.MaxDegree()); err != nil {
		t.Fatalf("after Algorithm 2: %v", err)
	}
}

// Rounds should grow no faster than logarithmically in n on the hard
// family at fixed Δ.
func TestDeterministicRoundScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test")
	}
	var prev int
	for _, m := range []int{16, 32, 64} {
		g, _ := graph.HardCliqueBipartite(m, 16)
		net := local.New(g)
		res, err := ColorDeterministic(net, TestParams())
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		requireColoring(t, g, res)
		if prev > 0 && res.Rounds > 2*prev {
			t.Fatalf("rounds jumped from %d to %d on doubling n — superlogarithmic", prev, res.Rounds)
		}
		prev = res.Rounds
	}
}

func TestDeterministicPaperParamsDelta126(t *testing.T) {
	if testing.Short() {
		t.Skip("large paper-exact instance")
	}
	g, _ := graph.HardCliqueBipartite(126, 126)
	net := local.New(g)
	res, err := ColorDeterministic(net, DefaultParams())
	if err != nil {
		t.Fatalf("ColorDeterministic(paper params): %v", err)
	}
	requireColoring(t, g, res)
	if res.Stats.HypergraphMinDeg != 4 {
		t.Fatalf("δ_H = %d, want 4 = floor(126/28)", res.Stats.HypergraphMinDeg)
	}
}

// EasyDenseBlocks gives almost cliques of size Δ-1 (two external edges per
// vertex) riddled with loopholes — the |C| < Δ shape of easy cliques.
func TestDeterministicEasyDenseBlocks(t *testing.T) {
	g, _ := graph.EasyDenseBlocks(8, 63, 1) // Δ = 64, cliques of 63
	p := TestParams()
	res, err := ColorDeterministic(local.New(g), p)
	if err != nil {
		t.Fatalf("ColorDeterministic: %v", err)
	}
	requireColoring(t, g, res)
	if res.Stats.EasyCliques != 8 || res.Stats.HardCliques != 0 {
		t.Fatalf("stats: %+v", res.Stats)
	}
}

// Property: the deterministic pipeline yields a verified Δ-coloring on
// random members of the hard family with random ID permutations and random
// easy patches.
func TestDeterministicProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 16 + rng.Intn(16)
		var g *graph.Graph
		if rng.Intn(2) == 0 {
			g, _ = graph.HardCliqueBipartite(m, 16)
		} else {
			g, _ = graph.HardWithEasyPatch(m, 16)
		}
		g = graph.PermuteIDs(g, rng)
		res, err := ColorDeterministic(local.New(g), TestParams())
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return coloring.VerifyComplete(g, res.Coloring, g.MaxDegree()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: the randomized pipeline is seed-robust on mixed instances.
func TestRandomizedProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, _ := graph.HardWithEasyPatch(16+rng.Intn(8), 16)
		res, err := ColorRandomized(local.New(g), TestRandomizedParams(), rng)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return coloring.VerifyComplete(g, res.Coloring, g.MaxDegree()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// With m > delta the patched instance has both Type I cliques (far from
// the easy patch, forming triads) and Type II cliques (adjacent to it),
// so all of Algorithm 2's branches and Algorithm 3 run in one execution.
func TestDeterministicMixedWithTriads(t *testing.T) {
	g, _ := graph.HardWithEasyPatch(24, 16)
	res, err := ColorDeterministic(local.New(g), TestParams())
	if err != nil {
		t.Fatalf("ColorDeterministic: %v", err)
	}
	requireColoring(t, g, res)
	if res.Stats.EasyCliques == 0 {
		t.Fatal("expected easy cliques")
	}
	if res.Stats.Triads == 0 {
		t.Fatal("expected Type I cliques with triads alongside the easy patch")
	}
	if res.Stats.TypeII == 0 {
		t.Fatal("expected Type II cliques adjacent to the easy patch")
	}
}

// MixedDenseRandom: e_C = 2 almost cliques (all easy at this scale — hard
// e_C=2 cliques need girth-8 super-graphs; see fproposal_test.go) driven
// end to end with an ε = 1/8 parameterization.
func TestDeterministicMixedDenseRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("larger random instance")
	}
	rng := rand.New(rand.NewSource(74))
	g, _ := graph.MixedDenseRandom(72, 31, rng)
	p := Params{Eps: 1.0 / 8, Subcliques: 3, SplitLevels: 0, SplitEps: 1.0 / 16, RulingR: 6, Layers: 40}
	res, err := ColorDeterministic(local.New(g), p)
	if err != nil {
		t.Fatalf("ColorDeterministic: %v", err)
	}
	requireColoring(t, g, res)
	if res.Stats.NumCliques != 72 {
		t.Fatalf("cliques = %d, want 72", res.Stats.NumCliques)
	}
}

// The whole pipeline must be bit-identical under parallel Exchange
// execution (state functions are pure; this pins that contract).
func TestDeterministicParallelWorkersIdentical(t *testing.T) {
	g, _ := graph.HardWithEasyPatch(16, 16)
	seqNet := local.New(g)
	seq, err := ColorDeterministic(seqNet, TestParams())
	if err != nil {
		t.Fatal(err)
	}
	parNet := local.New(g)
	parNet.SetWorkers(8)
	par, err := ColorDeterministic(parNet, TestParams())
	if err != nil {
		t.Fatal(err)
	}
	for v := range seq.Coloring.Colors {
		if seq.Coloring.Colors[v] != par.Coloring.Colors[v] {
			t.Fatalf("parallel execution diverged at vertex %d", v)
		}
	}
	if seq.Rounds != par.Rounds {
		t.Fatalf("round counts diverged: %d vs %d", seq.Rounds, par.Rounds)
	}
}
