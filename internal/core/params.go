// Package core implements the paper's main contribution: deterministic
// (Theorem 1, Algorithms 1-3) and randomized (Theorem 2, Algorithm 4)
// Δ-coloring of dense graphs in the LOCAL model.
//
// The deterministic pipeline follows Algorithm 1:
//
//  1. compute the almost-clique decomposition (internal/acd),
//  2. classify cliques hard/easy (internal/loophole) and color all hard
//     cliques via the slack-triad machinery of Algorithm 2 (hard.go),
//  3. color easy cliques and loopholes via Algorithm 3 (easy.go).
//
// Every lemma-level invariant the proofs rely on (Lemmas 9-17) is checked
// at runtime and turned into an error when violated, so a successful run is
// a machine-checked certificate for the instance at hand.
package core

import (
	"errors"
	"fmt"
)

// Default parameter values from the paper.
const (
	// DefaultEps is ε = 1/63 (Lemma 2, Definition 4).
	DefaultEps = 1.0 / 63.0
	// DefaultSubcliques is the number of sub-cliques each hard clique is
	// partitioned into for the HEG instance (Section 3.3). The value 28
	// is what makes Lemma 11's arithmetic work at ε = 1/63.
	DefaultSubcliques = 28
	// DefaultSplitLevels is i = 2 in Corollary 22: split into 2² = 4 parts.
	DefaultSplitLevels = 2
	// DefaultSplitEps is ε' = 1/100 (Lemma 13).
	DefaultSplitEps = 1.0 / 100.0
	// DefaultRulingR is the ruling-set radius for the loophole graph
	// (Algorithm 3, line 3).
	DefaultRulingR = 6
	// DefaultLayers is the BFS depth around ruling-set loopholes
	// (Algorithm 3, line 4; the paper uses 25, we allow a little margin
	// because our loophole-graph adjacency is defined on witness sets of
	// diameter up to 3).
	DefaultLayers = 30
	// HEGSlack is the required ratio δ_H / r_H (Lemma 11 proves 1.1 at the
	// default parameters).
	HEGSlack = 1.05
)

// Params configures the pipeline. The zero value is not valid; start from
// DefaultParams. Non-default values break the paper's constant arithmetic
// for small Δ and are intended for experiments only — Validate enforces the
// relations the proofs need.
type Params struct {
	// Eps is the ACD parameter ε.
	Eps float64
	// Subcliques is P, the per-clique partition size of the HEG instance.
	Subcliques int
	// SplitLevels is i of Corollary 22 (2^i parts).
	SplitLevels int
	// SplitEps is ε' of Lemma 13.
	SplitEps float64
	// RulingR is the ruling-set radius on the loophole graph.
	RulingR int
	// Layers is the BFS layering depth of Algorithm 3.
	Layers int
}

// DefaultParams returns the paper's parameterization.
func DefaultParams() Params {
	return Params{
		Eps:         DefaultEps,
		Subcliques:  DefaultSubcliques,
		SplitLevels: DefaultSplitLevels,
		SplitEps:    DefaultSplitEps,
		RulingR:     DefaultRulingR,
		Layers:      DefaultLayers,
	}
}

// Validate checks internal consistency of the parameters for a graph with
// maximum degree delta.
func (p Params) Validate(delta int) error {
	if p.Eps <= 0 || p.Eps >= 1 {
		return fmt.Errorf("core: Eps must be in (0,1), got %v", p.Eps)
	}
	if p.Subcliques < 1 {
		return fmt.Errorf("core: Subcliques must be positive, got %d", p.Subcliques)
	}
	// SplitLevels 0 skips Phase 2's splitting entirely (scaled-down test
	// preset); the Lemma 13 incoming bound is still verified at runtime.
	if p.SplitLevels < 0 || p.SplitEps <= 0 || p.SplitEps >= 1 {
		return fmt.Errorf("core: invalid split config (levels=%d, eps=%v)", p.SplitLevels, p.SplitEps)
	}
	if p.RulingR < 1 || p.Layers < p.RulingR {
		return fmt.Errorf("core: invalid loophole config (r=%d, layers=%d)", p.RulingR, p.Layers)
	}
	// Lemma 11 arithmetic: each sub-clique must send enough proposals:
	// (Δ - εΔ)/P must exceed the HEG slack times the max rank 2εΔ.
	if delta > 0 {
		proposals := (float64(delta) - p.Eps*float64(delta)) / float64(p.Subcliques)
		rank := 2 * p.Eps * float64(delta)
		if rank >= 1 && proposals <= HEGSlack*rank {
			return fmt.Errorf("core: Lemma 11 slack violated: %d sub-cliques give %.2f proposals vs rank %.2f",
				p.Subcliques, proposals, rank)
		}
	}
	return nil
}

// MaxPairVertices is the Lemma 15(iii) bound on slack-pair vertices per
// clique: (Δ - 2εΔ - 1)/2 + 1.
func (p Params) MaxPairVertices(delta int) float64 {
	return (float64(delta)-2*p.Eps*float64(delta)-1)/2 + 1
}

// Errors the driver distinguishes for callers.
var (
	// ErrNotDense is returned when the ACD finds sparse vertices
	// (Definition 4 fails); the paper's algorithm only covers dense
	// graphs.
	ErrNotDense = errors.New("core: graph is not dense (ACD has sparse vertices)")
	// ErrBrooks is returned for Brooks exceptions: the graph contains a
	// (Δ+1)-clique and admits no Δ-coloring.
	ErrBrooks = errors.New("core: graph contains a (Δ+1)-clique; no Δ-coloring exists")
)
