package baseline

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func TestBrooksOnBasicGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"EvenCycle", graph.Cycle(10)},
		{"Path", graph.Path(7)},
		{"Torus", graph.Torus(5, 6)},
		{"Star", graph.Star(9)},
		{"Petersen-ish", graph.RandomRegular(10, 3, rng)},
		{"HardClique", func() *graph.Graph { g, _ := graph.HardCliqueBipartite(8, 8); return g }()},
		{"K5minus", graph.RemoveEdges(graph.Complete(5), []graph.Edge{{U: 0, V: 1}})},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			col, err := Brooks(c.g)
			if err != nil {
				t.Fatalf("Brooks: %v", err)
			}
			if err := coloring.VerifyComplete(c.g, col, c.g.MaxDegree()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBrooksExceptions(t *testing.T) {
	if _, err := Brooks(graph.Complete(5)); err == nil {
		t.Fatal("K5 accepted")
	}
	if _, err := Brooks(graph.Cycle(7)); err == nil {
		t.Fatal("odd cycle accepted")
	}
	if _, err := Brooks(graph.Union(graph.Cycle(4), graph.Complete(3))); err == nil {
		t.Fatal("union with K3 (odd-cycle exception at Δ=2) accepted")
	}
}

func TestBrooksEmptyAndEdgeless(t *testing.T) {
	if _, err := Brooks(graph.NewBuilder(0).MustBuild()); err != nil {
		t.Fatalf("empty graph: %v", err)
	}
	if _, err := Brooks(graph.NewBuilder(3).MustBuild()); err == nil {
		t.Fatal("edgeless graph with Δ=0 accepted")
	}
}

func TestBrooksProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(40)
		g := graph.ErdosRenyi(n, 0.3, rng)
		if g.MaxDegree() == 0 {
			return true
		}
		col, err := Brooks(g)
		if err != nil {
			// Must be a genuine exception: a (Δ+1)-clique component or an
			// odd cycle at Δ=2, or the uncovered regular corner case; never
			// a wrong coloring.
			return true
		}
		return coloring.VerifyComplete(g, col, g.MaxDegree()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTrialColoringDeltaPlusOneCompletes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := graph.Torus(10, 10)
	net := local.New(g)
	c := coloring.NewPartial(g.N())
	res := TrialColoring(net, c, g.MaxDegree()+1, 500, rng)
	if res.Stuck {
		t.Fatalf("Δ+1 trial coloring stuck: %+v", res)
	}
	if err := coloring.VerifyComplete(g, c, g.MaxDegree()+1); err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 200 {
		t.Fatalf("trial coloring needed %d rounds", res.Rounds)
	}
}

func TestTrialColoringDeltaOnCliqueGetsStuck(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	// On K_Δ+... a clique of size Δ with Δ colors: each vertex needs a
	// distinct color; random trials thrash but here palette equals clique
	// size so it can finish. Use K_{Δ+1} structure via HardCliqueBipartite
	// instead: Δ colors, dense — the trial gets stuck on some vertices.
	g, _ := graph.HardCliqueBipartite(8, 8)
	net := local.New(g)
	c := coloring.NewPartial(g.N())
	res := TrialColoring(net, c, g.MaxDegree(), 300, rng)
	if !res.Stuck {
		// Completion is possible but astronomically unlikely; if it ever
		// happens the coloring must at least be valid.
		if err := coloring.VerifyComplete(g, c, g.MaxDegree()); err != nil {
			t.Fatal(err)
		}
		t.Skip("trial coloring finished against the odds")
	}
	if res.Colored == 0 {
		t.Fatal("no vertex colored at all")
	}
}

func TestPermanentSlack(t *testing.T) {
	g := graph.Star(4)
	c := coloring.NewPartial(4)
	if PermanentSlack(g, c) != 0 {
		t.Fatal("slack on uncolored graph")
	}
	c.Colors[1], c.Colors[2] = 0, 0
	if PermanentSlack(g, c) != 1 {
		t.Fatalf("center should have slack, got %d", PermanentSlack(g, c))
	}
	c.Colors[2] = 1
	if PermanentSlack(g, c) != 0 {
		t.Fatal("distinct colors should give no slack")
	}
}

func TestDeltaPlusOne(t *testing.T) {
	g := graph.Torus(8, 8)
	net := local.New(g)
	c, err := DeltaPlusOne(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.VerifyComplete(g, c, g.MaxDegree()+1); err != nil {
		t.Fatal(err)
	}
	if net.Rounds() == 0 {
		t.Fatal("no rounds charged")
	}
}

func TestLoopholeLayeredOnEasyGraph(t *testing.T) {
	g, _ := graph.EasyCliqueRing(6, 8)
	net := local.New(g)
	c, layers, err := LoopholeLayered(net, 50)
	if err != nil {
		t.Fatalf("LoopholeLayered: %v", err)
	}
	if err := coloring.VerifyComplete(g, c, g.MaxDegree()); err != nil {
		t.Fatal(err)
	}
	if layers <= 0 {
		t.Fatalf("layers = %d", layers)
	}
}

func TestLoopholeLayeredStuckOnHardGraph(t *testing.T) {
	g, _ := graph.HardCliqueBipartite(8, 8)
	net := local.New(g)
	_, _, err := LoopholeLayered(net, 50)
	if !errors.Is(err, ErrStuck) {
		t.Fatalf("expected ErrStuck on loophole-free graph, got %v", err)
	}
}

func TestLoopholeLayeredRespectsLayerBudget(t *testing.T) {
	// A long even cycle: only 4/6-cycles exist... C_{2k} has no sub-6-cycle
	// loopholes except itself when k <= 3; use a graph with one distant
	// loophole: a long path (every vertex has degree <= 2 < Δ? Δ=2, ends
	// have degree 1 -> singletons everywhere). Instead force the budget
	// error with maxLayers=0 on a star.
	g := graph.Star(5)
	net := local.New(g)
	if _, _, err := LoopholeLayered(net, 0); err == nil {
		t.Fatal("expected layer-budget error")
	}
}
