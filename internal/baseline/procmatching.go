package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// This file implements a randomized maximal matching in the explicit
// message-passing engine (Israeli–Itai style): a second, independent
// implementation of the Step-1 substrate used to cross-validate the
// state-engine version in internal/matching and to exercise the Proc
// engine in production code. Expected round complexity O(log n).
//
// The protocol runs in two-round cycles:
//
//	propose round (messages arrive at odd Steps): each free vertex flips a
//	coin; heads = it proposed to a uniformly random neighbor it believes
//	free. Tails = it is passive this cycle.
//	answer round (messages arrive at even Steps): a passive free vertex
//	accepts its smallest-ID proposer; the pair matches and both broadcast
//	a matched notification. Unanswered proposals expire.
type matchProc struct {
	v     int
	g     *graph.Graph
	rng   *rand.Rand
	done  bool
	mate  int
	alive map[int]bool // neighbors believed unmatched

	proposedTo int // outstanding proposal awaiting an answer, or -1
}

// message kinds for the matching protocol.
type (
	msgPropose struct{}
	msgAccept  struct{}
	msgMatched struct{}
)

func (p *matchProc) Init(v int, net *local.Network) []local.Outgoing {
	p.v = v
	p.g = net.Graph()
	p.mate = -1
	p.proposedTo = -1
	p.alive = make(map[int]bool, p.g.Degree(v))
	for _, w := range p.g.Neighbors(v) {
		p.alive[int(w)] = true
	}
	return p.propose()
}

// propose flips the activity coin and sends at most one proposal.
func (p *matchProc) propose() []local.Outgoing {
	p.proposedTo = -1
	if len(p.alive) == 0 {
		return nil
	}
	if p.rng.Intn(2) == 0 {
		return nil // passive this cycle
	}
	targets := make([]int, 0, len(p.alive))
	for w := range p.alive {
		targets = append(targets, w)
	}
	sort.Ints(targets)
	p.proposedTo = targets[p.rng.Intn(len(targets))]
	return []local.Outgoing{{To: p.proposedTo, Payload: msgPropose{}}}
}

func (p *matchProc) matchWith(w int) []local.Outgoing {
	p.mate = w
	p.done = true
	outs := make([]local.Outgoing, 0, p.g.Degree(p.v))
	for _, x := range p.g.Neighbors(p.v) {
		if int(x) != w {
			outs = append(outs, local.Outgoing{To: int(x), Payload: msgMatched{}})
		}
	}
	return outs
}

func (p *matchProc) Step(round int, inbox []local.Message) ([]local.Outgoing, bool) {
	var outs []local.Outgoing
	// Matched notifications can arrive in any round.
	for _, m := range inbox {
		if _, ok := m.Payload.(msgMatched); ok {
			delete(p.alive, m.From)
		}
	}
	if round%2 == 1 {
		// Answer phase: passive free vertices accept the smallest-ID
		// proposer (the inbox is sorted by sender).
		if p.proposedTo == -1 && p.mate == -1 {
			for _, m := range inbox {
				if _, ok := m.Payload.(msgPropose); ok {
					outs = append(outs, local.Outgoing{To: m.From, Payload: msgAccept{}})
					outs = append(outs, p.matchWith(m.From)...)
					break
				}
			}
		}
		// Proposers keep waiting; everyone stays alive one more round so
		// accepts can be delivered.
		return outs, false
	}
	// Resolve phase: check whether our proposal was accepted, then start
	// the next cycle.
	if p.mate == -1 && p.proposedTo != -1 {
		for _, m := range inbox {
			if _, ok := m.Payload.(msgAccept); ok && m.From == p.proposedTo {
				return append(outs, p.matchWith(m.From)...), true
			}
		}
	}
	if p.mate != -1 {
		return outs, true
	}
	if len(p.alive) == 0 {
		return outs, true // every neighbor is matched: locally maximal
	}
	return append(outs, p.propose()...), false
}

// RandomizedMatchingProcs computes a maximal matching with the
// message-passing engine. It is randomized (expected O(log n) rounds) and
// serves as an independent cross-check of internal/matching.
func RandomizedMatchingProcs(net *local.Network, rng *rand.Rand, maxRounds int) ([]graph.Edge, error) {
	g := net.Graph()
	procs := make([]local.Proc, g.N())
	impls := make([]*matchProc, g.N())
	for v := range procs {
		impls[v] = &matchProc{rng: rand.New(rand.NewSource(rng.Int63()))}
		procs[v] = impls[v]
	}
	if err := local.RunProcs(net, procs, maxRounds); err != nil {
		return nil, fmt.Errorf("baseline: proc matching: %w", err)
	}
	var out []graph.Edge
	for v, p := range impls {
		if p.mate >= 0 && v < p.mate {
			if impls[p.mate].mate != v {
				return nil, fmt.Errorf("baseline: asymmetric match %d-%d", v, p.mate)
			}
			out = append(out, graph.Edge{U: v, V: p.mate})
		}
	}
	return out, nil
}
