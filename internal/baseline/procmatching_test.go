package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
	"deltacoloring/internal/matching"
)

func TestRandomizedMatchingProcs(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"Cycle", graph.Cycle(21)},
		{"Complete", graph.Complete(12)},
		{"Torus", graph.Torus(6, 6)},
		{"ER", graph.ErdosRenyi(80, 0.08, rng)},
		{"Star", graph.Star(10)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			net := local.New(c.g)
			m, err := RandomizedMatchingProcs(net, rng, 4000)
			if err != nil {
				t.Fatalf("RandomizedMatchingProcs: %v", err)
			}
			if err := matching.Verify(c.g, m, c.g.Edges()); err != nil {
				t.Fatal(err)
			}
			if net.Messages() == 0 {
				t.Fatal("no messages recorded by the proc engine")
			}
		})
	}
}

// Cross-validation: the proc-engine matching and the state-engine matching
// are both maximal matchings of the same graph (they may differ edge-wise,
// but both must pass the same verifier, and their sizes are within the
// standard 2x factor of each other).
func TestProcMatchingCrossValidatesStateEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	g := graph.ErdosRenyi(120, 0.06, rng)
	mState, err := matching.Maximal(local.New(g))
	if err != nil {
		t.Fatal(err)
	}
	mProc, err := RandomizedMatchingProcs(local.New(g), rng, 4000)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range [][]graph.Edge{mState, mProc} {
		if err := matching.Verify(g, m, g.Edges()); err != nil {
			t.Fatal(err)
		}
	}
	// Any two maximal matchings are within a factor 2 in size.
	a, b := len(mState), len(mProc)
	if a > 2*b || b > 2*a {
		t.Fatalf("maximal matchings differ too much: %d vs %d", a, b)
	}
}

func TestProcMatchingRoundsLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for _, n := range []int{64, 1024} {
		g := graph.RandomRegular(n, 4, rng)
		net := local.New(g)
		if _, err := RandomizedMatchingProcs(net, rng, 4000); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if net.Rounds() > 400 {
			t.Fatalf("n=%d took %d rounds", n, net.Rounds())
		}
	}
}

func TestProcMatchingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(50)
		g := graph.ErdosRenyi(n, 0.15, rng)
		m, err := RandomizedMatchingProcs(local.New(g), rng, 8000)
		if err != nil {
			return false
		}
		return matching.Verify(g, m, g.Edges()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
