// Package baseline implements the comparison algorithms the evaluation
// measures the paper's contribution against:
//
//   - Brooks: a sequential (centralized) Δ-coloring via the constructive
//     proof of Brooks' theorem — ground truth for feasibility.
//   - TrialColoring: the classic one-round random color trial from the
//     introduction, used both as a Δ+1-coloring baseline and to measure
//     permanent-slack generation on sparse vs dense graphs (E10).
//   - DeltaPlusOne: deterministic distributed Δ+1-coloring (Linial), the
//     greedy-regime yardstick of Figure 1 (Θ(log* n) on constant degree).
//   - LoopholeLayered: a stand-in for the prior deterministic approach that
//     colors outward from loopholes only [PS95, GHKM21]; it gets stuck on
//     hard dense graphs, which is precisely the gap Algorithm 2 closes (E9,
//     E11).
package baseline

import (
	"errors"
	"fmt"
	"math/rand"

	"deltacoloring/internal/acd"
	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/linial"
	"deltacoloring/internal/listcolor"
	"deltacoloring/internal/local"
	"deltacoloring/internal/loophole"
)

// ErrStuck is returned by distributed baselines that cannot make progress.
var ErrStuck = errors.New("baseline: stuck with uncolored vertices")

// Brooks computes a Δ-coloring sequentially, following the constructive
// proof of Brooks' theorem. It fails exactly on the theorem's exceptions
// (components that are (Δ+1)-cliques, or odd cycles when Δ = 2) and on the
// rare non-2-connected regular configurations the simple construction does
// not cover (reported as an error, never a bad coloring).
func Brooks(g *graph.Graph) (*coloring.Partial, error) {
	delta := g.MaxDegree()
	if delta == 0 {
		if g.N() == 0 {
			return coloring.NewPartial(0), nil
		}
		return nil, fmt.Errorf("baseline: Δ=0 graph not colorable with 0 colors")
	}
	c := coloring.NewPartial(g.N())
	for _, comp := range g.ConnectedComponents() {
		if err := brooksComponent(g, c, comp, delta); err != nil {
			return nil, err
		}
	}
	if err := coloring.VerifyComplete(g, c, delta); err != nil {
		return nil, fmt.Errorf("baseline: internal error: %w", err)
	}
	return c, nil
}

func brooksComponent(g *graph.Graph, c *coloring.Partial, comp []int, delta int) error {
	// Case 1: some vertex has degree < Δ: color a BFS tree from it in
	// reverse order; every vertex keeps an uncolored neighbor (its parent)
	// until its own turn.
	for _, v := range comp {
		if g.Degree(v) < delta {
			return colorTreeFrom(g, c, comp, v, delta)
		}
	}
	// Δ-regular component. K_{Δ+1} and odd cycles are the exceptions.
	if len(comp) == delta+1 && g.IsClique(comp) {
		return fmt.Errorf("baseline: component is K_%d: Brooks exception", delta+1)
	}
	if delta == 2 {
		// The component is a cycle: 2-color it alternately if even.
		if len(comp)%2 == 1 {
			return fmt.Errorf("baseline: odd cycle: Brooks exception")
		}
		v, col := comp[0], 0
		prev := -1
		for range comp {
			c.Colors[v] = col
			col = 1 - col
			next := -1
			for _, w := range g.Neighbors(v) {
				if int(w) != prev {
					next = int(w)
					break
				}
			}
			prev, v = v, next
		}
		return nil
	}
	// Case 2: find v with non-adjacent neighbors u, w whose removal keeps
	// the component connected; same-color u and w, then tree-color from v.
	inComp := make(map[int]bool, len(comp))
	for _, v := range comp {
		inComp[v] = true
	}
	for _, v := range comp {
		nv := g.Neighbors(v)
		for i := 0; i < len(nv); i++ {
			for j := i + 1; j < len(nv); j++ {
				u, w := int(nv[i]), int(nv[j])
				if g.HasEdge(u, w) {
					continue
				}
				if !connectedWithout(g, comp, inComp, v, u, w) {
					continue
				}
				c.Colors[u] = 0
				c.Colors[w] = 0
				rest := make([]int, 0, len(comp)-2)
				for _, x := range comp {
					if x != u && x != w {
						rest = append(rest, x)
					}
				}
				return colorTreeFrom(g, c, rest, v, delta)
			}
		}
	}
	return fmt.Errorf("baseline: no Brooks branching vertex found (non-2-connected regular case)")
}

// colorTreeFrom colors `sub` (which must induce a connected subgraph
// containing root) greedily in reverse BFS order from root.
func colorTreeFrom(g *graph.Graph, c *coloring.Partial, sub []int, root, delta int) error {
	in := make(map[int]bool, len(sub))
	for _, v := range sub {
		in[v] = true
	}
	order := []int{root}
	seen := map[int]bool{root: true}
	for q := 0; q < len(order); q++ {
		for _, nw := range g.Neighbors(order[q]) {
			w := int(nw)
			if in[w] && !seen[w] {
				seen[w] = true
				order = append(order, w)
			}
		}
	}
	if len(order) != len(sub) {
		return fmt.Errorf("baseline: BFS covered %d of %d vertices", len(order), len(sub))
	}
	var p coloring.Palette
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		coloring.AvailableInto(&p, g, c, v, delta)
		col := p.Min()
		if col < 0 {
			return fmt.Errorf("baseline: vertex %d has empty palette in tree coloring", v)
		}
		c.Colors[v] = col
	}
	return nil
}

// connectedWithout reports whether comp minus {u, w} stays connected and
// still contains v.
func connectedWithout(g *graph.Graph, comp []int, inComp map[int]bool, v, u, w int) bool {
	if len(comp) <= 3 {
		return true
	}
	seen := map[int]bool{v: true}
	queue := []int{v}
	for q := 0; q < len(queue); q++ {
		for _, nx := range g.Neighbors(queue[q]) {
			x := int(nx)
			if inComp[x] && x != u && x != w && !seen[x] {
				seen[x] = true
				queue = append(queue, x)
			}
		}
	}
	return len(seen) == len(comp)-2
}

// TrialResult reports one run of the iterated random color trial.
type TrialResult struct {
	// Colored is the number of permanently colored vertices.
	Colored int
	// Rounds is the number of trial rounds executed.
	Rounds int
	// Stuck reports whether progress stopped before completion.
	Stuck bool
}

// TrialColoring runs the classic randomized color trial with the given
// palette size k: every round, each uncolored vertex picks a uniformly
// random color from its available palette and keeps it if no neighbor
// picked the same color; vertices with empty palettes stay uncolored. With
// k = Δ+1 this completes in O(log n) rounds w.h.p.; with k = Δ it gets
// stuck on dense graphs — the introduction's motivation for slack triads.
func TrialColoring(net *local.Network, c *coloring.Partial, k, maxRounds int, rng *rand.Rand) TrialResult {
	g := net.Graph()
	var res TrialResult
	for round := 0; round < maxRounds; round++ {
		type pick struct {
			color int
		}
		picks := make([]pick, g.N())
		anyPick := false
		var p coloring.Palette
		var cols []int
		for v := 0; v < g.N(); v++ {
			picks[v] = pick{color: coloring.None}
			if c.Colored(v) {
				continue
			}
			coloring.AvailableInto(&p, g, c, v, k)
			cols = p.AppendColors(cols[:0])
			if len(cols) == 0 {
				continue
			}
			picks[v] = pick{color: cols[rng.Intn(len(cols))]}
			anyPick = true
		}
		if !anyPick {
			res.Stuck = c.CountColored() < g.N()
			break
		}
		net.Charge(1)
		res.Rounds++
		progress := false
		for v := 0; v < g.N(); v++ {
			if picks[v].color == coloring.None {
				continue
			}
			ok := true
			for _, w := range g.Neighbors(v) {
				if picks[w].color == picks[v].color || c.Colors[w] == picks[v].color {
					ok = false
					break
				}
			}
			if ok {
				c.Colors[v] = picks[v].color
				progress = true
			}
		}
		if !progress && round > 2*g.MaxDegree()+20 {
			res.Stuck = true
			break
		}
		if c.CountColored() == g.N() {
			break
		}
	}
	res.Colored = c.CountColored()
	res.Stuck = res.Stuck || res.Colored < g.N()
	return res
}

// findWitnesses returns loophole witnesses: on dense graphs it uses the
// structured ACD classifier (near-linear); otherwise it falls back to the
// exhaustive per-vertex search.
func findWitnesses(net *local.Network, g *graph.Graph, delta int) []*loophole.Loophole {
	if a, err := acd.Compute(net, 1.0/16); err == nil && a.IsDense() {
		cl := loophole.Classify(g, a)
		out := make([]*loophole.Loophole, 0, len(cl.Witness))
		for ci, w := range cl.Witness {
			if cl.Easy[ci] && w != nil {
				out = append(out, w)
			}
		}
		return out
	}
	var out []*loophole.Loophole
	for _, l := range loophole.FindAll(g, delta) {
		if l != nil {
			out = append(out, l)
		}
	}
	return out
}

// PermanentSlack counts the vertices with two same-colored neighbors — the
// "permanent slack" quantity of the introduction.
func PermanentSlack(g *graph.Graph, c *coloring.Partial) int {
	slack := 0
	for v := 0; v < g.N(); v++ {
		seen := map[int]bool{}
		for _, w := range g.Neighbors(v) {
			col := c.Colors[w]
			if col == coloring.None {
				continue
			}
			if seen[col] {
				slack++
				break
			}
			seen[col] = true
		}
	}
	return slack
}

// DeltaPlusOne computes a deterministic distributed (Δ+1)-coloring — the
// greedy-regime problem of Figure 1 — and returns it with the round count.
func DeltaPlusOne(net *local.Network) (*coloring.Partial, error) {
	g := net.Graph()
	colors, err := linial.Color(net, g.MaxDegree()+1)
	if err != nil {
		return nil, err
	}
	c := coloring.NewPartial(g.N())
	copy(c.Colors, colors)
	return c, nil
}

// LoopholeLayered is the prior-approach stand-in: detect loopholes
// (Definition 6), then color BFS layers around them inward and the
// loopholes last. On graphs with loopholes everywhere this Δ-colors in
// O(diameter-to-loophole) rounds; on hard dense graphs it returns ErrStuck
// because no vertex has a loophole within reach — the situation that forces
// the paper's slack-triad machinery.
func LoopholeLayered(net *local.Network, maxLayers int) (*coloring.Partial, int, error) {
	g := net.Graph()
	delta := g.MaxDegree()
	c := coloring.NewPartial(g.N())
	witnesses := findWitnesses(net, g, delta)
	net.Charge(3)
	var anchors []*loophole.Loophole
	used := make([]bool, g.N())
	for _, l := range witnesses {
		if l == nil {
			continue
		}
		clash := false
		for _, v := range l.Verts {
			if used[v] {
				clash = true
				break
			}
		}
		if clash {
			continue
		}
		// Also require a vertex gap to neighbors of other anchors so the
		// brute-force completions stay independent.
		for _, v := range l.Verts {
			used[v] = true
			for _, w := range g.Neighbors(v) {
				used[w] = true
			}
		}
		anchors = append(anchors, l)
	}
	if len(anchors) == 0 {
		return nil, 0, fmt.Errorf("%w: no loopholes anywhere", ErrStuck)
	}
	// Layer and color inward.
	layer := make([]int, g.N())
	for v := range layer {
		layer[v] = -1
	}
	var frontier []int
	for _, l := range anchors {
		for _, v := range l.Verts {
			if layer[v] == -1 {
				layer[v] = 0
				frontier = append(frontier, v)
			}
		}
	}
	maxLayer := 0
	for depth := 1; depth <= maxLayers && len(frontier) > 0; depth++ {
		var next []int
		for _, v := range frontier {
			for _, w := range g.Neighbors(v) {
				if layer[w] == -1 {
					layer[w] = depth
					next = append(next, int(w))
				}
			}
		}
		if len(next) > 0 {
			maxLayer = depth
		}
		frontier = next
	}
	for v := range layer {
		if layer[v] == -1 {
			return nil, 0, fmt.Errorf("%w: vertex %d beyond %d layers of every loophole", ErrStuck, v, maxLayers)
		}
	}
	net.Charge(maxLayer)
	// Color each layer with a genuine deg+1-list instance (same substrate
	// and round accounting as Algorithm 3, so E12's comparison is fair).
	for depth := maxLayer; depth >= 1; depth-- {
		inst := listcolor.Instance{Active: make([]bool, g.N()), Lists: make([]coloring.Palette, g.N())}
		any := false
		for v := 0; v < g.N(); v++ {
			if layer[v] == depth {
				inst.Active[v] = true
				coloring.AvailableInto(&inst.Lists[v], g, c, v, delta)
				any = true
			}
		}
		if !any {
			continue
		}
		if err := listcolor.Solve(net, inst, c); err != nil {
			return nil, 0, fmt.Errorf("%w: layer %d: %v", ErrStuck, depth, err)
		}
	}
	net.Charge(4)
	for _, l := range anchors {
		if err := loophole.Complete(g, c, l, delta); err != nil {
			return nil, 0, fmt.Errorf("baseline: %w", err)
		}
	}
	if err := coloring.VerifyComplete(g, c, delta); err != nil {
		return nil, 0, err
	}
	return c, maxLayer, nil
}
