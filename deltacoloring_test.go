package deltacoloring

import (
	"errors"
	"testing"
)

func TestPublicDeterministic(t *testing.T) {
	g := GenHardCliqueBipartite(16, 16)
	res, err := Deterministic(g, ScaledParams())
	if err != nil {
		t.Fatalf("Deterministic: %v", err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 || len(res.Spans) == 0 {
		t.Fatalf("missing accounting: rounds=%d spans=%d", res.Rounds, len(res.Spans))
	}
	if res.Stats.Delta != 16 || res.Stats.N != g.N() {
		t.Fatalf("stats: %+v", res.Stats)
	}
}

func TestPublicRandomized(t *testing.T) {
	g := GenHardWithEasyPatch(16, 16)
	res, err := Randomized(g, ScaledRandomizedParams(), 7)
	if err != nil {
		t.Fatalf("Randomized: %v", err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestPublicRandomizedDeterministicGivenSeed(t *testing.T) {
	g := GenHardCliqueBipartite(16, 16)
	a, err := Randomized(g, ScaledRandomizedParams(), 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Randomized(g, ScaledRandomizedParams(), 99)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatal("same seed produced different colorings")
		}
	}
	if a.Rounds != b.Rounds {
		t.Fatal("same seed produced different round counts")
	}
}

func TestPublicNewGraphAndErrors(t *testing.T) {
	g, err := NewGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("graph shape wrong: %v", g)
	}
	if _, err := NewGraph(2, [][2]int{{0, 5}}); err == nil {
		t.Fatal("accepted bad edge")
	}
	// A cycle is sparse.
	if _, err := Deterministic(g, ScaledParams()); !errors.Is(err, ErrNotDense) {
		t.Fatalf("expected ErrNotDense, got %v", err)
	}
}

func TestPublicVerifyRejects(t *testing.T) {
	g := GenEasyCliqueRing(4, 16)
	res, err := Deterministic(g, ScaledParams())
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]int(nil), res.Colors...)
	bad[0] = bad[g.Neighbors(0)[0]]
	if err := Verify(g, bad); err == nil {
		t.Fatal("monochromatic edge accepted")
	}
	if err := Verify(g, bad[:3]); err == nil {
		t.Fatal("short color slice accepted")
	}
}
