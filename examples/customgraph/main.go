// Customgraph: build graphs by hand with the public API and see how the
// library communicates the paper's boundary conditions — sparse inputs
// (outside the dense-graph class of Definition 4) and Brooks exceptions
// ((Δ+1)-cliques, which admit no Δ-coloring at all).
//
//	go run ./examples/customgraph
package main

import (
	"errors"
	"fmt"
	"log"

	"deltacoloring"
)

func main() {
	// A hand-built dense graph: K17 minus one edge. Δ = 16, the two
	// non-adjacent vertices can share a color, so a Δ-coloring exists.
	var edges [][2]int
	for u := 0; u < 17; u++ {
		for v := u + 1; v < 17; v++ {
			if u == 0 && v == 1 {
				continue // the missing edge
			}
			edges = append(edges, [2]int{u, v})
		}
	}
	g, err := deltacoloring.NewGraph(17, edges)
	if err != nil {
		log.Fatal(err)
	}
	res, err := deltacoloring.Deterministic(g, deltacoloring.ScaledParams())
	if err != nil {
		log.Fatal(err)
	}
	if err := deltacoloring.Verify(g, res.Colors); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("K17 minus an edge: Δ-colored with %d colors; vertices 0 and 1 share color %d == %d\n",
		g.MaxDegree(), res.Colors[0], res.Colors[1])

	// Boundary 1: the full K17 is a (Δ+1)-clique — Brooks' theorem says no
	// Δ-coloring exists, and the library reports exactly that.
	edges = append(edges, [2]int{0, 1})
	k17, err := deltacoloring.NewGraph(17, edges)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := deltacoloring.Deterministic(k17, deltacoloring.ScaledParams()); errors.Is(err, deltacoloring.ErrBrooks) {
		fmt.Println("K17 itself: correctly rejected —", err)
	} else {
		log.Fatalf("expected ErrBrooks, got %v", err)
	}

	// Boundary 2: a sparse graph (a long cycle) is outside the paper's
	// dense-graph class; the almost-clique decomposition classifies every
	// vertex as sparse and the algorithm declines.
	var cyc [][2]int
	for v := 0; v < 40; v++ {
		cyc = append(cyc, [2]int{v, (v + 1) % 40})
	}
	cycle, err := deltacoloring.NewGraph(40, cyc)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := deltacoloring.Deterministic(cycle, deltacoloring.ScaledParams()); errors.Is(err, deltacoloring.ErrNotDense) {
		fmt.Println("C40: correctly rejected —", err)
	} else {
		log.Fatalf("expected ErrNotDense, got %v", err)
	}

	fmt.Println()
	fmt.Println("takeaway: a successful run is a machine-checked certificate; out-of-scope")
	fmt.Println("inputs fail loudly with typed errors instead of producing a bad coloring.")
}
