// Quickstart: generate a dense graph in which every almost clique is hard,
// Δ-color it with the deterministic algorithm (Theorem 1), and verify the
// result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"deltacoloring"
)

func main() {
	// 32 cliques of size 16 joined by a triangle-free matching super-graph:
	// n = 512 vertices, every vertex has degree exactly Δ = 16, and no
	// vertex is in any loophole — the adversarial case for Δ-coloring.
	g := deltacoloring.GenHardCliqueBipartite(16, 16)
	fmt.Printf("input: n=%d, m=%d, Δ=%d\n", g.N(), g.M(), g.MaxDegree())

	// ScaledParams is the Δ≈16 preset; DefaultParams is the paper-exact
	// ε = 1/63 configuration for Δ ⪆ 85.
	res, err := deltacoloring.Deterministic(g, deltacoloring.ScaledParams())
	if err != nil {
		log.Fatal(err)
	}
	if err := deltacoloring.Verify(g, res.Colors); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Δ-coloring found and verified: %d colors in %d LOCAL rounds\n",
		g.MaxDegree(), res.Rounds)
	fmt.Printf("structure: %d hard cliques, %d slack triads, pair-conflict degree %d (bound Δ-2 = %d)\n",
		res.Stats.HardCliques, res.Stats.Triads, res.Stats.PairGraphMaxDeg, g.MaxDegree()-2)

	fmt.Println("round breakdown by phase:")
	for _, sp := range res.Spans {
		if sp.Rounds > 0 {
			fmt.Printf("  %-16s %5d rounds\n", sp.Name, sp.Rounds)
		}
	}

	// The first few colors, to show the output shape.
	fmt.Printf("colors of clique 0 (vertices 0..15): %v\n", res.Colors[:16])
}
