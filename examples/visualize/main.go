// Visualize: Δ-color a small mixed instance and emit Graphviz DOT of the
// colored graph to stdout. Render with:
//
//	go run ./examples/visualize | dot -Tsvg > colored.svg
package main

import (
	"fmt"
	"log"
	"os"

	"deltacoloring"
)

func main() {
	// Small enough to render: a ring of 4 cliques of size 16 (n = 64).
	g := deltacoloring.GenEasyCliqueRing(4, 16)
	res, err := deltacoloring.Deterministic(g, deltacoloring.ScaledParams())
	if err != nil {
		log.Fatal(err)
	}
	if err := deltacoloring.Verify(g, res.Colors); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "colored n=%d with Δ=%d colors in %d rounds; DOT on stdout\n",
		g.N(), g.MaxDegree(), res.Rounds)
	if err := deltacoloring.WriteDOT(os.Stdout, g, res.Colors); err != nil {
		log.Fatal(err)
	}
}
