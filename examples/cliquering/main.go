// Cliquering: Δ-color a ring of cliques that is full of loopholes (easy
// almost cliques), the case handled by Algorithm 3's ruling-set + layering
// machinery, and contrast it with a mixed hard/easy instance where both
// pipelines run in one execution.
//
//	go run ./examples/cliquering
package main

import (
	"fmt"
	"log"

	"deltacoloring"
)

func main() {
	// A ring of 16 cliques of size 16; adjacent cliques share parallel
	// matching edges, creating non-clique 4-cycles (loopholes) everywhere.
	ring := deltacoloring.GenEasyCliqueRing(16, 16)
	fmt.Printf("easy ring: n=%d, m=%d, Δ=%d\n", ring.N(), ring.M(), ring.MaxDegree())

	res, err := deltacoloring.Deterministic(ring, deltacoloring.ScaledParams())
	if err != nil {
		log.Fatal(err)
	}
	if err := deltacoloring.Verify(ring, res.Colors); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("colored in %d rounds; all %d cliques easy; BFS layering used %d of %d allowed layers\n",
		res.Rounds, res.Stats.EasyCliques, res.Stats.Layers, deltacoloring.ScaledParams().Layers)

	// The mixed instance: the hard family with one rewired corner that
	// turns four cliques easy. Algorithm 2 colors the 28 hard cliques via
	// slack triads; Algorithm 3 finishes the 4 easy ones.
	mixed := deltacoloring.GenHardWithEasyPatch(16, 16)
	mres, err := deltacoloring.Deterministic(mixed, deltacoloring.ScaledParams())
	if err != nil {
		log.Fatal(err)
	}
	if err := deltacoloring.Verify(mixed, mres.Colors); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mixed instance: %d hard + %d easy cliques, %d triads, colored in %d rounds\n",
		mres.Stats.HardCliques, mres.Stats.EasyCliques, mres.Stats.Triads, mres.Rounds)

	// Color histogram of the ring: with Δ colors on Δ-sized cliques the
	// palette is used almost uniformly.
	hist := make([]int, ring.MaxDegree())
	for _, c := range res.Colors {
		hist[c]++
	}
	fmt.Printf("ring color usage histogram: %v\n", hist)
}
