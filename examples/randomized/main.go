// Randomized: run Theorem 2's shattering-based Δ-coloring across several
// seeds and report how the random T-node placement shatters the graph into
// small components that the deterministic machinery then finishes off.
//
//	go run ./examples/randomized
package main

import (
	"fmt"
	"log"

	"deltacoloring"
)

func main() {
	g := deltacoloring.GenHardCliqueBipartite(32, 16)
	fmt.Printf("input: n=%d, m=%d, Δ=%d (64 hard cliques)\n", g.N(), g.M(), g.MaxDegree())
	fmt.Println()
	fmt.Println("seed  rounds  T-kept  components  max-comp  comp-rounds")

	p := deltacoloring.ScaledRandomizedParams()
	sumMax := 0
	for seed := int64(1); seed <= 5; seed++ {
		res, err := deltacoloring.Randomized(g, p, seed)
		if err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}
		if err := deltacoloring.Verify(g, res.Colors); err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}
		fmt.Printf("%4d  %6d  %6d  %10d  %8d  %11d\n",
			seed, res.Rounds, res.Rand.TNodesKept, res.Rand.Components,
			res.Rand.MaxComponent, res.Rand.ComponentRounds)
		sumMax += res.Rand.MaxComponent
	}
	fmt.Println()
	fmt.Printf("average largest component: %.1f of %d vertices — the shattering that buys the\n",
		float64(sumMax)/5, g.N())
	fmt.Println("exponential speedup: the deterministic algorithm only ever runs on these")
	fmt.Println("poly(Δ)·log n sized pieces (in parallel), so its Θ(log n) becomes Θ(log log n).")
}
